//! Integer feasibility: interval propagation, exclusion points, and branch &
//! bound over the exact simplex.
//!
//! This is the solver DART calls on every `solve_path_constraint` (Fig. 5 of
//! the paper). The theory is conjunctions of linear integer constraints over
//! boxed variables (program inputs are 32-bit words, §2.2). `!=` constraints
//! on a single variable become *excluded points*; multi-variable `!=` is
//! case-split. Everything else reduces to `<= 0` rows which are decided by
//! interval propagation plus branch & bound on the LP relaxation.

use crate::constraint::{Constraint, NormalForm};
use crate::linear::Var;
use crate::rational::{ArithError, Rat};
use crate::simplex::{feasible_point, Lp, LpResult, LpRow, LpSession};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Inclusive variable bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Bounds {
    /// The 32-bit signed box used for DART program inputs.
    pub const I32: Bounds = Bounds {
        lo: i32::MIN as i64,
        hi: i32::MAX as i64,
    };

    /// Creates bounds, panicking if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Bounds {
        assert!(lo <= hi, "empty bounds {lo}..={hi}");
        Bounds { lo, hi }
    }
}

impl Default for Bounds {
    fn default() -> Bounds {
        Bounds::I32
    }
}

/// A satisfying assignment: values for every variable the constraints
/// mention. Variables not mentioned are unconstrained and keep whatever value
/// the caller already had (the paper's `IM + IM'` update).
pub type Assignment = BTreeMap<Var, i64>;

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A model was found.
    Sat(Assignment),
    /// The conjunction is unsatisfiable over the boxed integers.
    Unsat,
    /// The solver gave up (arithmetic overflow or resource cap). DART treats
    /// this like `Unsat` for search purposes but records it separately so a
    /// search that hit `Unknown` is never reported as *complete*.
    Unknown,
}

impl SolveOutcome {
    /// Whether this outcome carries a model.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveOutcome::Sat(_))
    }
}

/// Per-query diagnostics filled in by [`Solver::solve_with_hint_info`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveInfo {
    /// Variable-connected components the query split into (0 when the
    /// query was settled before partitioning, 1 when it was connected).
    pub components: usize,
}

impl SolveInfo {
    /// Whether independence splitting actually partitioned the query.
    pub fn was_split(&self) -> bool {
        self.components > 1
    }
}

/// Per-session solver-internal counters, snapshot via
/// [`PrefixSession::stats`]: warm-LP engine activity plus portfolio race
/// outcomes. All four are scheduling-dependent diagnostics (they vary with
/// cache state, speculation and the portfolio toggle), never observables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Dual-simplex pivots performed by the warm LP engine.
    pub warm_pivots: u64,
    /// Warm-engine dictionary builds/fallbacks to the cold two-phase
    /// simplex.
    pub cold_restarts: u64,
    /// Portfolio races settled decisively by the FD arm (a model).
    pub portfolio_fd_wins: u64,
    /// Portfolio races settled decisively by the LP arm (a refutation).
    pub portfolio_lp_wins: u64,
}

/// Tunable solver limits.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Box applied to every variable (program inputs are 32-bit words).
    pub default_bounds: Bounds,
    /// Maximum branch & bound nodes per case-split leaf.
    pub max_bb_nodes: usize,
    /// Maximum assign-and-propagate nodes per case-split leaf (the
    /// hint-guided finite-domain search tried before LP branch & bound).
    pub max_fd_nodes: usize,
    /// Maximum feasibility checks per query (bounds the lazy case
    /// analysis over multi-variable `!=`).
    pub max_ne_leaves: usize,
    /// Maximum interval-propagation sweeps.
    pub max_propagation_rounds: usize,
    /// Wall-clock deadline per query. When set, a query that runs past it
    /// stops at the next search node and returns [`SolveOutcome::Unknown`]
    /// — sound degradation (DART records `Unknown` as incompleteness,
    /// never as `Unsat`). `None` (the default) means node budgets alone
    /// bound the query, with zero timing overhead.
    pub deadline: Option<Duration>,
    /// Race the hint-guided FD search against the shared-prefix LP screen
    /// on two threads per session query, first *decisive* verdict wins
    /// (see [`PrefixSession`]). The commit rule is deterministic, so
    /// outcomes — and report bytes — are identical to the sequential
    /// pipeline; only wall-clock time changes. Off by default.
    pub portfolio: bool,
    /// Warm-start the shared-prefix LP with a persistent dual-simplex
    /// dictionary ([`LpSession::with_warm`]). On by default; turning it
    /// off restores the cold re-solve engine for ablation. Verdicts are
    /// identical either way.
    pub lp_warm: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            default_bounds: Bounds::I32,
            max_bb_nodes: 20_000,
            max_fd_nodes: 4_000,
            max_ne_leaves: 512,
            max_propagation_rounds: 100,
            deadline: None,
            portfolio: false,
            lp_warm: true,
        }
    }
}

/// Why a search gave up: an arithmetic/budget failure, or the per-query
/// wall-clock deadline. Both surface as [`SolveOutcome::Unknown`].
#[derive(Debug)]
enum Stop {
    Arith(ArithError),
    Deadline,
}

impl From<ArithError> for Stop {
    fn from(e: ArithError) -> Stop {
        Stop::Arith(e)
    }
}

/// Per-query deadline clock, started when the query enters the solver.
/// With no deadline configured and no cancel token attached,
/// [`QueryClock::expired`] never touches the system clock.
#[derive(Debug, Clone, Copy)]
struct QueryClock<'a> {
    deadline: Option<Instant>,
    /// Cooperative cancel token, set by a racing portfolio arm's decisive
    /// finish; observed at every point the deadline is. Cancellation rides
    /// the same give-up paths as deadline expiry, so cancelled searches
    /// degrade to indecision, never to a wrong verdict.
    cancel: Option<&'a AtomicBool>,
}

impl QueryClock<'_> {
    fn start(deadline: Option<Duration>) -> QueryClock<'static> {
        QueryClock {
            deadline: deadline.map(|d| Instant::now() + d),
            cancel: None,
        }
    }

    /// The same deadline, additionally observing `cancel`.
    fn with_cancel<'a>(&self, cancel: &'a AtomicBool) -> QueryClock<'a> {
        QueryClock {
            deadline: self.deadline,
            cancel: Some(cancel),
        }
    }

    fn expired(&self) -> bool {
        self.cancel.is_some_and(|t| t.load(Ordering::Relaxed))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Decision procedure for conjunctions of linear integer constraints over
/// boxed variables.
///
/// # Examples
///
/// ```
/// use dart_solver::{Constraint, LinExpr, RelOp, Solver, SolveOutcome, Var};
///
/// let solver = Solver::default();
/// // x0 == 10  and  x0 - x1 > 0
/// let cs = vec![
///     Constraint::new(LinExpr::var(Var(0)).offset(-10), RelOp::Eq),
///     Constraint::new(LinExpr::var(Var(0)).sub(&LinExpr::var(Var(1))), RelOp::Gt),
/// ];
/// match solver.solve(&cs) {
///     SolveOutcome::Sat(model) => {
///         assert_eq!(model[&Var(0)], 10);
///         assert!(model[&Var(1)] < 10);
///     }
///     other => panic!("expected sat, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Solver {
    config: SolverConfig,
}

impl Solver {
    /// Creates a solver with the given limits.
    pub fn new(config: SolverConfig) -> Solver {
        Solver { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Starts an incremental prefix session: push the path constraints of a
    /// run once, then answer each `negated_prefix(j)` query from the shared
    /// prefix state instead of rebuilding it (see [`PrefixSession`]).
    pub fn session(&self) -> PrefixSession<'_> {
        PrefixSession::new(self)
    }

    /// Solves the conjunction of `constraints`.
    pub fn solve(&self, constraints: &[Constraint]) -> SolveOutcome {
        self.solve_with_hint(constraints, |_| None)
    }

    /// Solves the conjunction, preferring values from `hint` where possible
    /// (DART passes the previous run's input vector so solutions stay close
    /// to the already-explored execution).
    pub fn solve_with_hint<F>(&self, constraints: &[Constraint], hint: F) -> SolveOutcome
    where
        F: Fn(Var) -> Option<i64>,
    {
        let mut info = SolveInfo::default();
        self.solve_with_hint_info(constraints, hint, &mut info)
    }

    /// [`Solver::solve_with_hint`] that also reports per-query diagnostics
    /// (how many independent components the query split into).
    pub fn solve_with_hint_info<F>(
        &self,
        constraints: &[Constraint],
        hint: F,
        info: &mut SolveInfo,
    ) -> SolveOutcome
    where
        F: Fn(Var) -> Option<i64>,
    {
        // 1. Triviality screening.
        let mut live: Vec<&Constraint> = Vec::with_capacity(constraints.len());
        for c in constraints {
            match c.triviality() {
                Some(true) => {}
                Some(false) => return SolveOutcome::Unsat,
                None => live.push(c),
            }
        }

        // 2. GCD integrality test: `sum a_i x_i + k == 0` has no integer
        //    solution unless gcd(a_i) divides k. Detects integrality gaps
        //    that branch & bound would otherwise crawl over.
        for c in &live {
            if gcd_infeasible(c) {
                return SolveOutcome::Unsat;
            }
        }
        if live.is_empty() {
            return SolveOutcome::Sat(Assignment::new());
        }

        // 3. Constraint-independence splitting: partition the conjunction
        //    into variable-connected components and decide each one on its
        //    own. A DART `negated_prefix(j)` query only *changes* the
        //    component containing the negated constraint's variables — every
        //    other component is already satisfied by the previous run's
        //    input vector, so its per-component hint probe answers it
        //    without any search.
        let clock = QueryClock::start(self.config.deadline);
        let components = connected_components(&live);
        info.components = components.len();
        if components.len() == 1 {
            return self.solve_component(&live, &hint, &clock);
        }
        let mut model = Assignment::new();
        for comp in &components {
            let subset: Vec<&Constraint> = comp.iter().map(|&i| live[i]).collect();
            match self.solve_component(&subset, &hint, &clock) {
                SolveOutcome::Sat(part) => model.extend(part),
                SolveOutcome::Unsat => return SolveOutcome::Unsat,
                SolveOutcome::Unknown => return SolveOutcome::Unknown,
            }
        }
        SolveOutcome::Sat(model)
    }

    /// Decides one variable-connected conjunction of non-trivial
    /// constraints: cheap probes, normalization, then the lazy `!=` case
    /// analysis over interval propagation + branch & bound.
    fn solve_component<F>(&self, live: &[&Constraint], hint: &F, clock: &QueryClock) -> SolveOutcome
    where
        F: Fn(Var) -> Option<i64>,
    {
        // Dense variable numbering.
        let mut vars: Vec<Var> = Vec::new();
        let mut var_idx: HashMap<Var, usize> = HashMap::new();
        for c in live {
            for v in c.vars() {
                var_idx.entry(v).or_insert_with(|| {
                    vars.push(v);
                    vars.len() - 1
                });
            }
        }
        let n = vars.len();
        if n == 0 {
            return SolveOutcome::Sat(Assignment::new());
        }

        // Cheap probes against the *original* constraints: the hint
        // itself, then all-zeros clamped into range.
        let b = self.config.default_bounds;
        let probe_sat = |pick: &dyn Fn(Var) -> i64| -> Option<Assignment> {
            let ok = live
                .iter()
                .all(|c| c.satisfied_by(|v| Some(pick(v).clamp(b.lo, b.hi))));
            if ok {
                Some(
                    vars.iter()
                        .map(|&v| (v, pick(v).clamp(b.lo, b.hi)))
                        .collect(),
                )
            } else {
                None
            }
        };
        if let Some(m) = probe_sat(&|v| hint(v).unwrap_or(0)) {
            return SolveOutcome::Sat(m);
        }
        if let Some(m) = probe_sat(&|_| 0) {
            return SolveOutcome::Sat(m);
        }

        // Normalize. Single-variable `!=` becomes an excluded point;
        // multi-variable `!=` is case-split.
        let (mut rows, exclusions, mut splits) = normalize_live(live, &var_idx, n);

        // Lazy splitting over multi-variable `!=`: solve without them,
        // and only split on one that the found model violates. Unsat
        // without the disequalities settles the query in one step.
        let mut leaves_left = self.config.max_ne_leaves.max(1);
        let hint_vals: Vec<i64> = vars.iter().map(|&v| hint(v).unwrap_or(0)).collect();
        let boxes = vec![(b.lo as i128, b.hi as i128); n];
        let outcome = self.lazy_solve(
            &mut rows,
            &mut splits,
            &exclusions,
            &hint_vals,
            &boxes,
            &mut leaves_left,
            clock,
        );
        match outcome {
            Ok(Some(sol)) => {
                let model: Assignment = vars.iter().map(|&v| (v, sol[var_idx[&v]])).collect();
                // Defensive final check of the original constraints.
                if live
                    .iter()
                    .all(|c| c.satisfied_by(|v| model.get(&v).copied()))
                {
                    SolveOutcome::Sat(model)
                } else {
                    SolveOutcome::Unknown
                }
            }
            Ok(None) => SolveOutcome::Unsat,
            Err(Stop::Deadline) => {
                debug_log("query deadline expired");
                SolveOutcome::Unknown
            }
            Err(Stop::Arith(e)) => {
                debug_log(&format!("arithmetic/bb failure: {e:?}"));
                SolveOutcome::Unknown
            }
        }
    }

    /// Decides `rows ∧ exclusions` (no disequalities), using the
    /// hint-guided finite-domain search first and LP branch & bound as the
    /// complete fallback. Consumes one unit of `leaves_left`.
    #[allow(clippy::too_many_arguments)] // internal; mirrors the search state
    fn feasible(
        &self,
        rows: &[Row],
        exclusions: &[BTreeSet<i64>],
        hint: &[i64],
        init_boxes: &[(i128, i128)],
        leaves_left: &mut usize,
        clock: &QueryClock,
    ) -> Result<Option<Vec<i64>>, Stop> {
        if *leaves_left == 0 {
            return Err(ArithError::Overflow.into()); // budget: Unknown upstream
        }
        if clock.expired() {
            return Err(Stop::Deadline);
        }
        *leaves_left -= 1;
        let boxes = init_boxes.to_vec();
        let mut fd_budget = self.config.max_fd_nodes;
        if let Some(sol) =
            self.fd_search(rows, boxes.clone(), exclusions, hint, &mut fd_budget, clock)
        {
            return Ok(Some(sol));
        }
        let mut budget = self.config.max_bb_nodes;
        self.branch_bound(rows, boxes, exclusions, hint, &mut budget, clock)
    }

    /// Lazy case analysis over multi-variable `!=` constraints: solve the
    /// inequality/equality skeleton; if the model violates some
    /// disequality, branch on *that one* (hint-preferred side first) and
    /// recurse with the chosen side added as a row. Unsat skeletons prune
    /// whole subtrees, so the 2^k eager expansion never materializes.
    #[allow(clippy::too_many_arguments)] // internal; mirrors the search state
    fn lazy_solve(
        &self,
        rows: &mut Vec<Row>,
        splits: &mut Vec<NeSplit>,
        exclusions: &[BTreeSet<i64>],
        hint: &[i64],
        init_boxes: &[(i128, i128)],
        leaves_left: &mut usize,
        clock: &QueryClock,
    ) -> Result<Option<Vec<i64>>, Stop> {
        let sol = match self.feasible(rows, exclusions, hint, init_boxes, leaves_left, clock)? {
            Some(sol) => sol,
            None => return Ok(None),
        };
        let violated = splits.iter().position(|ne| ne.violated_by(&sol));
        let Some(i) = violated else {
            return Ok(Some(sol));
        };
        let ne = splits.swap_remove(i);
        // Prefer the side the hint already satisfies.
        let hint_ok = |r: &Row| r.eval(hint) <= r.rhs as i128;
        let order: [Row; 2] = if hint_ok(&ne.hi_side) && !hint_ok(&ne.lo_side) {
            [ne.hi_side.clone(), ne.lo_side.clone()]
        } else {
            [ne.lo_side.clone(), ne.hi_side.clone()]
        };
        let mut found = None;
        for side in order {
            rows.push(side);
            let res = self.lazy_solve(
                rows,
                splits,
                exclusions,
                hint,
                init_boxes,
                leaves_left,
                clock,
            );
            rows.pop();
            match res {
                Ok(Some(sol)) => {
                    found = Some(sol);
                    break;
                }
                Ok(None) => {}
                Err(e) => {
                    splits.push(ne);
                    return Err(e);
                }
            }
        }
        splits.push(ne);
        Ok(found)
    }

    /// One full FD strategy pass for a session query: hint-guided search
    /// from the warm boxes, then verification against the case splits and
    /// the original constraints. `None` is indecision (budget, deadline,
    /// cancellation, or an unverified candidate), never unsat — exactly
    /// the sequential pipeline's fall-through condition.
    #[allow(clippy::too_many_arguments)] // internal; mirrors the search state
    fn fd_strategy(
        &self,
        q_rows: &[Row],
        q_boxes: &[(i128, i128)],
        q_excl: &[BTreeSet<i64>],
        hint_vals: &[i64],
        q_splits: &[NeSplit],
        q_live: &[&Constraint],
        q_vars: &[Var],
        clock: &QueryClock,
    ) -> Option<Assignment> {
        let mut fd_budget = self.config.max_fd_nodes;
        let sol = self.fd_search(
            q_rows,
            q_boxes.to_vec(),
            q_excl,
            hint_vals,
            &mut fd_budget,
            clock,
        )?;
        if q_splits.iter().any(|ne| ne.violated_by(&sol)) {
            return None;
        }
        let model: Assignment = q_vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, sol[i]))
            .collect();
        if q_live
            .iter()
            .all(|c| c.satisfied_by(|v| model.get(&v).copied()))
        {
            Some(model)
        } else {
            None
        }
    }

    /// Hint-guided assign-and-propagate search.
    ///
    /// Picks variables in order, tries a handful of candidate values per
    /// variable (the hint clamped into the current box, then the box edges,
    /// then hint±1), propagating intervals after each assignment and
    /// backtracking on wipe-out. This finds models near the previous input
    /// vector (DART's `IM + IM'` behaviour) on the small, mostly-unit
    /// systems path constraints produce. It is *incomplete*: `None` means
    /// "not found within budget", never "unsat".
    #[allow(clippy::too_many_arguments)] // internal; mirrors the search state
    fn fd_search(
        &self,
        rows: &[Row],
        mut boxes: Vec<(i128, i128)>,
        exclusions: &[BTreeSet<i64>],
        hint: &[i64],
        budget: &mut usize,
        clock: &QueryClock,
    ) -> Option<Vec<i64>> {
        if *budget == 0 || clock.expired() {
            return None;
        }
        *budget -= 1;
        if !self.propagate(rows, &mut boxes) {
            return None;
        }

        // Find the first unfixed variable.
        let next = boxes.iter().position(|&(lo, hi)| lo < hi);
        let Some(i) = next else {
            // All fixed: verify rows and exclusions.
            let cand: Vec<i64> = boxes.iter().map(|&(lo, _)| lo as i64).collect();
            let ok = rows.iter().all(|r| r.eval(&cand) <= r.rhs as i128)
                && cand
                    .iter()
                    .enumerate()
                    .all(|(j, v)| !exclusions[j].contains(v));
            return if ok { Some(cand) } else { None };
        };

        let (lo, hi) = boxes[i];
        let pref = (hint.get(i).copied().unwrap_or(0) as i128).clamp(lo, hi) as i64;
        let mut tried: Vec<i64> = Vec::with_capacity(5);
        let mut candidates: Vec<i64> = Vec::with_capacity(5);
        for raw in [
            Some(pref),
            pick_in_box(lo, hi, &exclusions[i], pref),
            Some(lo as i64),
            Some(hi as i64),
            pick_in_box(lo, hi, &exclusions[i], (lo + (hi - lo) / 2) as i64),
        ]
        .into_iter()
        .flatten()
        {
            if !tried.contains(&raw) && !exclusions[i].contains(&raw) {
                tried.push(raw);
                candidates.push(raw);
            }
        }
        for val in candidates {
            let mut sub = boxes.clone();
            sub[i] = (val as i128, val as i128);
            if let Some(sol) = self.fd_search(rows, sub, exclusions, hint, budget, clock) {
                return Some(sol);
            }
            if *budget == 0 {
                return None;
            }
        }
        None
    }

    /// Integer feasibility of `rows` within `boxes`, avoiding excluded
    /// points, by interval propagation + LP relaxation + branching.
    ///
    /// Iterative depth-first worklist (recursion here can reach thousands of
    /// nodes on 32-bit boxes, which would overflow the call stack).
    #[allow(clippy::too_many_arguments)] // internal; mirrors the search state
    fn branch_bound(
        &self,
        rows: &[Row],
        boxes: Vec<(i128, i128)>,
        exclusions: &[BTreeSet<i64>],
        hint: &[i64],
        budget: &mut usize,
        clock: &QueryClock,
    ) -> Result<Option<Vec<i64>>, Stop> {
        let mut work: Vec<Vec<(i128, i128)>> = vec![boxes];
        while let Some(mut boxes) = work.pop() {
            if clock.expired() {
                return Err(Stop::Deadline);
            }
            if *budget == 0 {
                return Err(ArithError::Overflow.into()); // treated as Unknown upstream
            }
            *budget -= 1;

            if !self.propagate(rows, &mut boxes) {
                continue;
            }

            // Integer probe: clamp the hint into the boxes, dodge
            // exclusions, then verify all rows.
            if let Some(cand) = probe_candidate(&boxes, exclusions, hint) {
                if rows.iter().all(|r| r.eval(&cand) <= r.rhs as i128) {
                    return Ok(Some(cand));
                }
            }

            // LP relaxation on shifted variables y = x - lo >= 0.
            let lp = build_lp(rows, &boxes)?;
            let point = match feasible_point(&lp)? {
                LpResult::Infeasible => continue,
                LpResult::Feasible(p) => p,
            };
            let xs: Vec<Rat> = point
                .iter()
                .zip(&boxes)
                .map(|(y, &(lo, _))| y.add(Rat::from_int(lo)))
                .collect::<Result<_, _>>()?;
            if (*budget).is_multiple_of(1000) {
                debug_log(&format!("bb budget={budget} vertex={xs:?} boxes={boxes:?}"));
            }

            // Rounding probes: snap the (possibly fractional) vertex to
            // nearby integer points and verify. Without this, vertices that
            // sit just off the integer grid make plain branching crawl one
            // unit per node across a 2^32-wide box.
            for mode in [Rounding::Nearest, Rounding::Floor, Rounding::Ceil] {
                let snapped: Vec<i64> = xs
                    .iter()
                    .zip(&boxes)
                    .map(|(v, &(lo, hi))| {
                        let raw = match mode {
                            Rounding::Nearest => v.round(),
                            Rounding::Floor => v.floor(),
                            Rounding::Ceil => v.ceil(),
                        };
                        raw.clamp(lo, hi) as i64
                    })
                    .collect();
                if let Some(cand) = adjust_for_exclusions(&snapped, &boxes, exclusions) {
                    if rows.iter().all(|r| r.eval(&cand) <= r.rhs as i128) {
                        return Ok(Some(cand));
                    }
                }
            }

            // All-integer vertex that avoids exclusions?
            if xs.iter().all(|v| v.is_integer()) {
                let cand: Vec<i64> = xs.iter().map(|v| v.numer() as i64).collect();
                if cand
                    .iter()
                    .enumerate()
                    .all(|(i, v)| !exclusions[i].contains(v))
                {
                    debug_assert!(rows.iter().all(|r| r.eval(&cand) <= r.rhs as i128));
                    return Ok(Some(cand));
                }
                // Integer vertex on an excluded point: split around it.
                let i = cand
                    .iter()
                    .enumerate()
                    .find(|(i, v)| exclusions[*i].contains(v))
                    .map(|(i, _)| i)
                    .expect("some excluded");
                let p = cand[i] as i128;
                push_child(&mut work, &boxes, i, Some(p + 1), None);
                push_child(&mut work, &boxes, i, None, Some(p - 1));
                continue;
            }

            // Fractional: branch on the first fractional variable. Push the
            // half containing the rounded value last so it is explored first.
            let (i, val) = xs
                .iter()
                .enumerate()
                .find(|(_, v)| !v.is_integer())
                .map(|(i, v)| (i, *v))
                .expect("some fractional");
            let floor = val.floor();
            let left_first = val.sub(Rat::from_int(floor))? <= Rat::new(1, 2)?;
            let (first, second) = if left_first {
                ((None, Some(floor)), (Some(floor + 1), None))
            } else {
                ((Some(floor + 1), None), (None, Some(floor)))
            };
            push_child(&mut work, &boxes, i, second.0, second.1);
            push_child(&mut work, &boxes, i, first.0, first.1);
        }
        Ok(None)
    }

    /// Iterated interval propagation. Returns `false` on emptiness.
    fn propagate(&self, rows: &[Row], boxes: &mut [(i128, i128)]) -> bool {
        for _ in 0..self.config.max_propagation_rounds {
            let mut changed = false;
            for row in rows {
                // Minimum achievable value of the row's lhs.
                let mut min_sum: i128 = 0;
                for &(j, a) in &row.coeffs {
                    let (lo, hi) = boxes[j];
                    min_sum += if a > 0 {
                        a as i128 * lo
                    } else {
                        a as i128 * hi
                    };
                }
                if row.coeffs.is_empty() {
                    if row.rhs < 0 {
                        return false;
                    }
                    continue;
                }
                if min_sum > row.rhs as i128 {
                    return false;
                }
                for &(j, a) in &row.coeffs {
                    let (lo, hi) = boxes[j];
                    let own_min = if a > 0 {
                        a as i128 * lo
                    } else {
                        a as i128 * hi
                    };
                    let rest_min = min_sum - own_min;
                    let slack = row.rhs as i128 - rest_min; // a*x <= slack
                    if a > 0 {
                        let new_hi = slack.div_euclid(a as i128);
                        if new_hi < hi {
                            boxes[j].1 = new_hi;
                            changed = true;
                        }
                    } else {
                        let na = (-a) as i128; // -a*x >= -slack => x >= ceil(-slack/ -a*... )
                        let new_lo = -(slack.div_euclid(na));
                        if new_lo > lo {
                            boxes[j].0 = new_lo;
                            changed = true;
                        }
                    }
                    if boxes[j].0 > boxes[j].1 {
                        return false;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        true
    }
}

/// Per-push snapshot of a [`PrefixSession`]: the cumulative state after the
/// corresponding constraint was pushed.
#[derive(Debug, Clone)]
struct Frame {
    live_len: usize,
    vars_len: usize,
    rows_len: usize,
    splits_len: usize,
    /// This push's contribution to the shared-prefix LP (already shifted to
    /// nonnegative variables), re-pushed lazily on out-of-order queries.
    lp_rows: Vec<LpRow>,
    /// Exclusion sets after this push (one per numbered variable).
    exclusions: Vec<BTreeSet<i64>>,
    /// Interval-propagated boxes for the whole prefix up to this push.
    boxes: Vec<(i128, i128)>,
    /// The prefix up to this push is known unsatisfiable (trivially false
    /// constraint, GCD integrality gap, or propagation wipe-out).
    infeasible: bool,
}

/// Incremental solving of one run's `negated_prefix(j)` query family.
///
/// The directed search (paper Fig. 5) solves, for each candidate branch `j`
/// of a run, the query `c_0 ∧ … ∧ c_{j-1} ∧ ¬c_j`. A fresh
/// [`Solver::solve_with_hint`] per query re-screens, re-numbers,
/// re-normalizes and re-propagates the shared prefix from scratch — O(n²)
/// constraint work per run. A `PrefixSession` does that work once per
/// *pushed constraint* instead: [`PrefixSession::push`] extends the dense
/// numbering, the normalized rows and the interval-propagation fixpoint
/// incrementally, and [`PrefixSession::solve_query`] starts from the
/// snapshot at depth `j` — it also screens the query against a shared-prefix
/// LP ([`LpSession`]) whose tableau and last feasible vertex persist across
/// the whole query family.
///
/// Outcomes are equisatisfiable with `solve_with_hint` on the same
/// conjunction; the concrete model may differ (the session's tighter warm
/// boxes can steer the search to a different — equally valid — solution).
///
/// # Examples
///
/// ```
/// use dart_solver::{Constraint, LinExpr, RelOp, Solver, Var};
///
/// let solver = Solver::default();
/// let mut sess = solver.session();
/// // Path: x0 == 1, then x0 != 5.
/// sess.push(&Constraint::new(LinExpr::var(Var(0)).offset(-1), RelOp::Eq));
/// sess.push(&Constraint::new(LinExpr::var(Var(0)).offset(-5), RelOp::Ne));
/// // Query j=1: x0 == 1 ∧ x0 == 5 — unsat.
/// let neg = Constraint::new(LinExpr::var(Var(0)).offset(-5), RelOp::Eq);
/// assert!(!sess.solve_query(1, &neg, |_| None).is_sat());
/// // Query j=0: x0 != 1 — sat.
/// let neg = Constraint::new(LinExpr::var(Var(0)).offset(-1), RelOp::Ne);
/// assert!(sess.solve_query(0, &neg, |_| None).is_sat());
/// ```
#[derive(Debug, Clone)]
pub struct PrefixSession<'s> {
    solver: &'s Solver,
    /// Non-trivial pushed constraints, in push order.
    live: Vec<Constraint>,
    /// Dense variable numbering, append-only across pushes.
    vars: Vec<Var>,
    var_idx: HashMap<Var, usize>,
    /// Normalized `<= 0` rows of the live prefix.
    rows: Vec<Row>,
    /// Multi-variable `!=` case splits of the live prefix.
    splits: Vec<NeSplit>,
    /// Shared-prefix LP; its frame stack mirrors `frames` up to
    /// `lp_synced` (queries at shallower depths pop it lazily).
    lp: LpSession,
    /// How many leading `frames` the LP currently has pushed.
    lp_synced: usize,
    frames: Vec<Frame>,
    /// Portfolio race outcomes (the LP counters live in `lp`).
    stats: SessionStats,
}

impl<'s> PrefixSession<'s> {
    fn new(solver: &'s Solver) -> PrefixSession<'s> {
        PrefixSession {
            solver,
            live: Vec::new(),
            vars: Vec::new(),
            var_idx: HashMap::new(),
            rows: Vec::new(),
            splits: Vec::new(),
            lp: LpSession::with_warm(0, solver.config.lp_warm),
            lp_synced: 0,
            frames: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// Number of pushed constraints.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Solver-internal counters accumulated over this session's queries:
    /// warm-LP pivots and restarts plus portfolio race wins.
    pub fn stats(&self) -> SessionStats {
        let lp = self.lp.stats();
        SessionStats {
            warm_pivots: lp.warm_pivots,
            cold_restarts: lp.cold_restarts,
            ..self.stats
        }
    }

    /// The solver this session runs on.
    pub fn solver(&self) -> &'s Solver {
        self.solver
    }

    /// Pushes the next path constraint, extending the numbering, the
    /// normalized rows and the propagated boxes incrementally.
    pub fn push(&mut self, c: &Constraint) {
        let b = self.solver.config.default_bounds;
        let prev = self.frames.last();
        let mut frame = match prev {
            Some(f) => Frame {
                live_len: f.live_len,
                vars_len: f.vars_len,
                rows_len: f.rows_len,
                splits_len: f.splits_len,
                lp_rows: Vec::new(),
                exclusions: f.exclusions.clone(),
                boxes: f.boxes.clone(),
                infeasible: f.infeasible,
            },
            None => Frame {
                live_len: 0,
                vars_len: 0,
                rows_len: 0,
                splits_len: 0,
                lp_rows: Vec::new(),
                exclusions: Vec::new(),
                boxes: Vec::new(),
                infeasible: false,
            },
        };
        let screened = match c.triviality() {
            Some(true) => None,
            Some(false) => {
                frame.infeasible = true;
                None
            }
            None if gcd_infeasible(c) => {
                frame.infeasible = true;
                None
            }
            None => Some(c),
        };
        if let Some(c) = screened.filter(|_| !frame.infeasible) {
            self.live.push(c.clone());
            frame.live_len += 1;
            let first_new_var = self.vars.len();
            for v in c.vars() {
                if let std::collections::hash_map::Entry::Vacant(e) = self.var_idx.entry(v) {
                    e.insert(self.vars.len());
                    self.vars.push(v);
                }
            }
            frame.vars_len = self.vars.len();
            frame.exclusions.resize_with(frame.vars_len, BTreeSet::new);
            frame
                .boxes
                .resize(frame.vars_len, (b.lo as i128, b.hi as i128));
            normalize_one(
                c,
                &self.var_idx,
                &mut self.rows,
                &mut frame.exclusions,
                &mut self.splits,
            );
            let new_rows = &self.rows[frame.rows_len..];
            frame.lp_rows = shift_lp_rows(new_rows, b, first_new_var, frame.vars_len);
            frame.rows_len = self.rows.len();
            frame.splits_len = self.splits.len();
            if !self
                .solver
                .propagate(&self.rows[..frame.rows_len], &mut frame.boxes)
            {
                frame.infeasible = true;
            }
        }
        self.frames.push(frame);
    }

    /// Removes the most recently pushed constraint.
    ///
    /// # Panics
    ///
    /// Panics if the session is empty.
    pub fn pop(&mut self) {
        self.frames.pop().expect("pop on an empty PrefixSession");
        let (live_len, vars_len, rows_len, splits_len) = self
            .frames
            .last()
            .map(|f| (f.live_len, f.vars_len, f.rows_len, f.splits_len))
            .unwrap_or((0, 0, 0, 0));
        for v in self.vars.drain(vars_len..) {
            self.var_idx.remove(&v);
        }
        self.live.truncate(live_len);
        self.rows.truncate(rows_len);
        self.splits.truncate(splits_len);
        let depth = self.frames.len();
        if self.lp_synced > depth {
            self.lp.pop_to(depth);
            self.lp_synced = depth;
        }
    }

    /// Solves `pushed[0] ∧ … ∧ pushed[j-1] ∧ negated` — the directed
    /// search's `negated_prefix(j)` with the prefix taken from this
    /// session's snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `j` exceeds [`PrefixSession::depth`].
    pub fn solve_query<F>(&mut self, j: usize, negated: &Constraint, hint: F) -> SolveOutcome
    where
        F: Fn(Var) -> Option<i64>,
    {
        let mut info = SolveInfo::default();
        self.solve_query_info(j, negated, hint, &mut info)
    }

    /// The live (non-trivial) prefix constraints visible to a depth-`j`
    /// query, in push order.
    pub fn prefix_live(&self, j: usize) -> &[Constraint] {
        let live_len = if j == 0 {
            0
        } else {
            self.frames[j - 1].live_len
        };
        &self.live[..live_len]
    }

    /// Like [`PrefixSession::solve_query`], additionally reporting how the
    /// query decomposed into independent components via `info`.
    pub fn solve_query_info<F>(
        &mut self,
        j: usize,
        negated: &Constraint,
        hint: F,
        info: &mut SolveInfo,
    ) -> SolveOutcome
    where
        F: Fn(Var) -> Option<i64>,
    {
        assert!(j <= self.frames.len(), "query depth {j} beyond session");
        let clock = QueryClock::start(self.solver.config.deadline);
        let b = self.solver.config.default_bounds;
        let (live_len, vars_len, rows_len, splits_len, infeasible) = if j == 0 {
            (0, 0, 0, 0, false)
        } else {
            let f = &self.frames[j - 1];
            (
                f.live_len,
                f.vars_len,
                f.rows_len,
                f.splits_len,
                f.infeasible,
            )
        };
        if infeasible {
            return SolveOutcome::Unsat;
        }

        // Screen the negated constraint.
        let neg_live = match negated.triviality() {
            Some(true) => None,
            Some(false) => return SolveOutcome::Unsat,
            None if gcd_infeasible(negated) => return SolveOutcome::Unsat,
            None => Some(negated),
        };
        let q_live: Vec<Constraint> = self.live[..live_len]
            .iter()
            .chain(neg_live)
            .cloned()
            .collect();
        let q_live: Vec<&Constraint> = q_live.iter().collect();
        if q_live.is_empty() {
            return SolveOutcome::Sat(Assignment::new());
        }

        // Extend the prefix numbering with the negated constraint's new
        // variables (session vars numbered deeper than the prefix are
        // renumbered fresh for this query).
        let mut q_vars: Vec<Var> = self.vars[..vars_len].to_vec();
        let mut q_idx: HashMap<Var, usize> =
            q_vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        if let Some(c) = neg_live {
            for v in c.vars() {
                if let std::collections::hash_map::Entry::Vacant(e) = q_idx.entry(v) {
                    e.insert(q_vars.len());
                    q_vars.push(v);
                }
            }
        }
        let n = q_vars.len();

        // Cheap probes: the hint, then all-zeros.
        if let Some(m) = probe_model(&q_live, &q_vars, b, &|v| hint(v).unwrap_or(0)) {
            return SolveOutcome::Sat(m);
        }
        if let Some(m) = probe_model(&q_live, &q_vars, b, &|_| 0) {
            return SolveOutcome::Sat(m);
        }

        // Constraint-independence splitting: when the negated constraint's
        // variable-connected component is independent of the rest of the
        // query, solve only that component and fill the other components
        // straight from the hint — they are the previous run's path
        // constraints, which that run's inputs satisfied by construction.
        let components = connected_components(&q_live);
        info.components = components.len();
        if neg_live.is_some() && components.len() > 1 {
            let neg_idx = q_live.len() - 1;
            let pick = |v: Var| hint(v).unwrap_or(0).clamp(b.lo, b.hi);
            let mut neg_comp: &[usize] = &[];
            let mut rest_ok = true;
            let mut fill = Assignment::new();
            for comp in &components {
                if comp.contains(&neg_idx) {
                    neg_comp = comp;
                    continue;
                }
                for &ci in comp {
                    if q_live[ci].satisfied_by(|v| Some(pick(v))) {
                        for v in q_live[ci].vars() {
                            fill.insert(v, pick(v));
                        }
                    } else {
                        rest_ok = false;
                        break;
                    }
                }
                if !rest_ok {
                    break;
                }
            }
            if rest_ok {
                let comp_live: Vec<&Constraint> = neg_comp.iter().map(|&i| q_live[i]).collect();
                match self.solver.solve_component(&comp_live, &hint, &clock) {
                    SolveOutcome::Sat(part) => {
                        fill.extend(part);
                        return SolveOutcome::Sat(fill);
                    }
                    SolveOutcome::Unsat => return SolveOutcome::Unsat,
                    // An unknown component verdict loses no information:
                    // fall through to the full warm-state solve below.
                    SolveOutcome::Unknown => {}
                }
            }
        }

        // Query state = prefix snapshots + the negated constraint.
        let mut q_rows = self.rows[..rows_len].to_vec();
        let mut q_splits = self.splits[..splits_len].to_vec();
        let (mut q_excl, mut q_boxes) = if j == 0 {
            (Vec::new(), Vec::new())
        } else {
            let f = &self.frames[j - 1];
            (f.exclusions.clone(), f.boxes.clone())
        };
        q_excl.resize_with(n, BTreeSet::new);
        q_boxes.resize(n, (b.lo as i128, b.hi as i128));
        let first_new_row = q_rows.len();
        if let Some(c) = neg_live {
            normalize_one(c, &q_idx, &mut q_rows, &mut q_excl, &mut q_splits);
        }

        // Warm-started interval propagation: the prefix part of `q_boxes`
        // is already at its fixpoint, so only the negated rows do work.
        if !self.solver.propagate(&q_rows, &mut q_boxes) {
            return SolveOutcome::Unsat;
        }

        // The two decisive strategies: the hint-guided finite-domain pass
        // (settles easy `Sat` queries — path constraints are mostly unit
        // systems) and the shared-prefix LP screen (an infeasible rational
        // relaxation ⇒ integer unsat, settling `Unsat` queries without any
        // branch & bound). The sequential pipeline runs FD first and the
        // LP only on a miss; the portfolio races them on two threads with
        // a deterministic first-decisive-verdict commit rule.
        let hint_vals: Vec<i64> = q_vars.iter().map(|&v| hint(v).unwrap_or(0)).collect();
        if self.solver.config.portfolio && self.lp_available(j, n) {
            let neg_lp = shift_lp_rows(&q_rows[first_new_row..], b, vars_len, n);
            if let Some(outcome) = self.race_strategies(
                &q_rows, &q_boxes, &q_excl, &hint_vals, &q_splits, &q_live, &q_vars, neg_lp, &clock,
            ) {
                return outcome;
            }
        } else {
            if let Some(model) = self.solver.fd_strategy(
                &q_rows, &q_boxes, &q_excl, &hint_vals, &q_splits, &q_live, &q_vars, &clock,
            ) {
                return SolveOutcome::Sat(model);
            }
            // The LP's cached vertex survives pops, so sibling queries
            // usually answer by point checks; on a miss the warm
            // dictionary repairs with a few dual pivots.
            if self.lp_available(j, n) {
                let neg_lp = shift_lp_rows(&q_rows[first_new_row..], b, vars_len, n);
                let mark = self.lp.push_frame(neg_lp);
                let verdict = self.lp.feasible();
                self.lp.pop_to(mark);
                match verdict {
                    Ok(LpResult::Infeasible) => return SolveOutcome::Unsat,
                    Ok(LpResult::Feasible(_)) => {}
                    Err(_) => {} // no information; fall through to the full solve
                }
            }
        }

        // Full integer solve from the warm state.
        let mut leaves_left = self.solver.config.max_ne_leaves.max(1);
        let outcome = self.solver.lazy_solve(
            &mut q_rows,
            &mut q_splits,
            &q_excl,
            &hint_vals,
            &q_boxes,
            &mut leaves_left,
            &clock,
        );
        match outcome {
            Ok(Some(sol)) => {
                let model: Assignment = q_vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, sol[i]))
                    .collect();
                if q_live
                    .iter()
                    .all(|c| c.satisfied_by(|v| model.get(&v).copied()))
                {
                    SolveOutcome::Sat(model)
                } else {
                    SolveOutcome::Unknown
                }
            }
            Ok(None) => SolveOutcome::Unsat,
            Err(Stop::Deadline) => {
                debug_log("query deadline expired (session)");
                SolveOutcome::Unknown
            }
            Err(Stop::Arith(e)) => {
                debug_log(&format!("arithmetic/bb failure (session): {e:?}"));
                SolveOutcome::Unknown
            }
        }
    }

    /// Brings the shared-prefix LP to exactly the first `j` frames,
    /// popping or re-pushing stored frame rows as needed. Returns `false`
    /// when the LP has to be skipped (a rejected width change — cannot
    /// happen with the monotone widths used here, but the screen degrades
    /// instead of aborting).
    fn sync_lp(&mut self, j: usize) -> bool {
        if self.lp_synced > j {
            self.lp.pop_to(j);
            self.lp_synced = j;
        }
        while self.lp_synced < j {
            let f = &self.frames[self.lp_synced];
            if self
                .lp
                .grow_vars(f.vars_len.max(self.lp.num_vars()))
                .is_err()
            {
                return false;
            }
            self.lp.push_frame(f.lp_rows.clone());
            self.lp_synced += 1;
        }
        true
    }

    /// Syncs the shared-prefix LP to depth `j` and widens it to at least
    /// `n` columns (a deeper earlier query may already have widened it
    /// further; the extra zero columns don't change feasibility). `false`
    /// means the LP screen must be skipped for this query.
    fn lp_available(&mut self, j: usize, n: usize) -> bool {
        self.sync_lp(j) && self.lp.grow_vars(n.max(self.lp.num_vars())).is_ok()
    }

    /// Races the FD and warm-LP strategies on two threads. Only a
    /// *decisive* arm — an FD model, or an LP refutation of the rational
    /// relaxation — cancels its peer and commits. Sound strategies cannot
    /// both be decisive on one query, each arm is deterministic given its
    /// inputs, and a cancelled arm was provably headed for indecision
    /// (the canceller's verdict forecloses its decisive outcome), so the
    /// committed verdict is independent of timing and thread count.
    /// `None` — both arms indecisive — falls through to the same complete
    /// solve the sequential pipeline uses.
    #[allow(clippy::too_many_arguments)] // internal; mirrors the search state
    fn race_strategies(
        &mut self,
        q_rows: &[Row],
        q_boxes: &[(i128, i128)],
        q_excl: &[BTreeSet<i64>],
        hint_vals: &[i64],
        q_splits: &[NeSplit],
        q_live: &[&Constraint],
        q_vars: &[Var],
        neg_lp: Vec<LpRow>,
        clock: &QueryClock,
    ) -> Option<SolveOutcome> {
        let solver = self.solver;
        let lp = &mut self.lp;
        let fd_cancel = AtomicBool::new(false);
        let lp_cancel = AtomicBool::new(false);
        let (fd_model, lp_verdict) = std::thread::scope(|scope| {
            let fd_arm = scope.spawn(|| {
                let fd_clock = clock.with_cancel(&fd_cancel);
                let model = solver.fd_strategy(
                    q_rows, q_boxes, q_excl, hint_vals, q_splits, q_live, q_vars, &fd_clock,
                );
                if model.is_some() {
                    lp_cancel.store(true, Ordering::Relaxed);
                }
                model
            });
            // The LP arm runs on the calling thread.
            let mark = lp.push_frame(neg_lp);
            let verdict = lp.feasible_cancellable(Some(&lp_cancel));
            lp.pop_to(mark);
            if matches!(verdict, Ok(Some(LpResult::Infeasible))) {
                fd_cancel.store(true, Ordering::Relaxed);
            }
            let model = fd_arm.join().expect("fd strategy panicked");
            (model, verdict)
        });
        if let Ok(Some(LpResult::Infeasible)) = lp_verdict {
            debug_assert!(fd_model.is_none(), "sound strategies cannot disagree");
            self.stats.portfolio_lp_wins += 1;
            return Some(SolveOutcome::Unsat);
        }
        if let Some(model) = fd_model {
            self.stats.portfolio_fd_wins += 1;
            return Some(SolveOutcome::Sat(model));
        }
        None
    }
}

/// Normalizes one non-trivial constraint into rows / an exclusion point / a
/// case split, over the numbering `var_idx`.
fn normalize_one(
    c: &Constraint,
    var_idx: &HashMap<Var, usize>,
    rows: &mut Vec<Row>,
    exclusions: &mut [BTreeSet<i64>],
    splits: &mut Vec<NeSplit>,
) {
    let n = exclusions.len();
    match c.normalize() {
        NormalForm::Conj(list) => {
            for le in list {
                rows.push(Row::from_le(&le.expr, var_idx, n));
            }
        }
        NormalForm::Disj(a, bside) => {
            if c.expr.num_vars() == 1 {
                let (v, coeff) = c.expr.iter().next().expect("one var");
                let k = c.expr.constant();
                if (-k) % coeff == 0 {
                    exclusions[var_idx[&v]].insert((-k) / coeff);
                }
            } else {
                splits.push(NeSplit {
                    diff: Row::from_le(&c.expr, var_idx, n),
                    lo_side: Row::from_le(&a.expr, var_idx, n),
                    hi_side: Row::from_le(&bside.expr, var_idx, n),
                });
            }
        }
    }
}

/// Probes one concrete pick against the original constraints; returns the
/// model over `vars` (clamped into bounds) when every constraint holds.
fn probe_model(
    live: &[&Constraint],
    vars: &[Var],
    b: Bounds,
    pick: &dyn Fn(Var) -> i64,
) -> Option<Assignment> {
    let ok = live
        .iter()
        .all(|c| c.satisfied_by(|v| Some(pick(v).clamp(b.lo, b.hi))));
    if ok {
        Some(
            vars.iter()
                .map(|&v| (v, pick(v).clamp(b.lo, b.hi)))
                .collect(),
        )
    } else {
        None
    }
}

/// Shifts integer rows to the LP's nonnegative variables `y = x - lo`
/// (every variable uses the session-wide default box), and appends the
/// upper-bound rows `y_v <= hi - lo` for the variables numbered in
/// `first_new_var..n` (each variable's bound row is emitted exactly once,
/// by the frame that introduced it).
fn shift_lp_rows(rows: &[Row], b: Bounds, first_new_var: usize, n: usize) -> Vec<LpRow> {
    let lo = b.lo as i128;
    let width = b.hi as i128 - lo;
    let mut out = Vec::with_capacity(rows.len() + n - first_new_var);
    for row in rows {
        let mut coeffs = vec![Rat::ZERO; n];
        let mut shift: i128 = 0;
        for &(idx, a) in &row.coeffs {
            coeffs[idx] = Rat::from_int(a as i128);
            shift += a as i128 * lo;
        }
        out.push(LpRow {
            coeffs,
            rhs: Rat::from_int(row.rhs as i128 - shift),
        });
    }
    for v in first_new_var..n {
        let mut coeffs = vec![Rat::ZERO; n];
        coeffs[v] = Rat::ONE;
        out.push(LpRow {
            coeffs,
            rhs: Rat::from_int(width),
        });
    }
    out
}

/// Emits a diagnostic line when `DART_SOLVER_DEBUG` is set; `Unknown`
/// outcomes are otherwise silent by design.
fn debug_log(msg: &str) {
    if std::env::var_os("DART_SOLVER_DEBUG").is_some() {
        eprintln!("dart-solver: {msg}");
    }
}

/// Whether an equality constraint fails the GCD integrality test:
/// `sum a_i x_i + k == 0` has no integer solution unless gcd(a_i) | k.
fn gcd_infeasible(c: &Constraint) -> bool {
    if !matches!(c.op, crate::constraint::RelOp::Eq) {
        return false;
    }
    let g = c.expr.iter().fold(0i64, |acc, (_, a)| gcd_i64(acc, a));
    g != 0 && c.expr.constant() % g != 0
}

/// Partitions `live` into variable-connected components (union-find over
/// the constraints' variables). Components are returned in order of their
/// first constraint, each listing constraint indices in input order, so the
/// partition is deterministic.
fn connected_components(live: &[&Constraint]) -> Vec<Vec<usize>> {
    // Union-find over constraint indices, joined through shared variables.
    let mut parent: Vec<usize> = (0..live.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let mut owner: HashMap<Var, usize> = HashMap::new();
    for (i, c) in live.iter().enumerate() {
        for v in c.vars() {
            match owner.entry(v) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let a = find(&mut parent, *e.get());
                    let b = find(&mut parent, i);
                    if a != b {
                        // Attach the later root under the earlier one.
                        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                        parent[hi] = lo;
                    }
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..live.len() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    groups.into_values().collect()
}

/// Normalizes non-trivial constraints into `<= 0` rows, single-variable
/// exclusion points, and multi-variable `!=` case splits, over the dense
/// numbering `var_idx` (`n` variables).
fn normalize_live(
    live: &[&Constraint],
    var_idx: &HashMap<Var, usize>,
    n: usize,
) -> (Vec<Row>, Vec<BTreeSet<i64>>, Vec<NeSplit>) {
    let mut rows: Vec<Row> = Vec::new();
    let mut exclusions: Vec<BTreeSet<i64>> = vec![BTreeSet::new(); n];
    let mut splits: Vec<NeSplit> = Vec::new();
    for c in live {
        match c.normalize() {
            NormalForm::Conj(list) => {
                for le in list {
                    rows.push(Row::from_le(&le.expr, var_idx, n));
                }
            }
            NormalForm::Disj(a, bside) => {
                if c.expr.num_vars() == 1 {
                    // a*x + k != 0: excluded point when a | -k.
                    let (v, coeff) = c.expr.iter().next().expect("one var");
                    let k = c.expr.constant();
                    if (-k) % coeff == 0 {
                        exclusions[var_idx[&v]].insert((-k) / coeff);
                    }
                    // Otherwise trivially true: skip.
                } else {
                    splits.push(NeSplit {
                        diff: Row::from_le(&c.expr, var_idx, n),
                        lo_side: Row::from_le(&a.expr, var_idx, n),
                        hi_side: Row::from_le(&bside.expr, var_idx, n),
                    });
                }
            }
        }
    }
    (rows, exclusions, splits)
}

/// Greatest common divisor over `i64` (absolute values; `gcd(0, a) = |a|`).
fn gcd_i64(mut a: i64, mut b: i64) -> i64 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Rounding mode used when snapping LP vertices to the integer grid.
#[derive(Debug, Clone, Copy)]
enum Rounding {
    Nearest,
    Floor,
    Ceil,
}

/// Nudges each coordinate off excluded points (staying inside its box);
/// returns `None` if some box is fully excluded.
fn adjust_for_exclusions(
    cand: &[i64],
    boxes: &[(i128, i128)],
    exclusions: &[BTreeSet<i64>],
) -> Option<Vec<i64>> {
    cand.iter()
        .zip(boxes)
        .zip(exclusions)
        .map(|((&v, &(lo, hi)), excl)| pick_in_box(lo, hi, excl, v))
        .collect()
}

/// Pushes a child box with variable `i` capped to `[lo_cap, hi_cap]` onto the
/// branch & bound worklist, skipping empty boxes.
fn push_child(
    work: &mut Vec<Vec<(i128, i128)>>,
    boxes: &[(i128, i128)],
    i: usize,
    lo_cap: Option<i128>,
    hi_cap: Option<i128>,
) {
    let mut sub = boxes.to_vec();
    if let Some(l) = lo_cap {
        sub[i].0 = sub[i].0.max(l);
    }
    if let Some(h) = hi_cap {
        sub[i].1 = sub[i].1.min(h);
    }
    if sub[i].0 <= sub[i].1 {
        work.push(sub);
    }
}

/// A multi-variable disequality `lin != 0`, kept for lazy case analysis:
/// `lo_side` is `lin <= -1`, `hi_side` is `lin >= 1` (as a `<=` row).
#[derive(Debug, Clone)]
struct NeSplit {
    /// `lin <= 0`-shaped row whose tightness identifies violation:
    /// the disequality is violated exactly when `lin == 0`.
    diff: Row,
    lo_side: Row,
    hi_side: Row,
}

impl NeSplit {
    fn violated_by(&self, sol: &[i64]) -> bool {
        self.diff.eval(sol) == self.diff.rhs as i128
    }
}

/// A normalized row `sum coeffs · x <= rhs` over dense variable indices.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    coeffs: Vec<(usize, i64)>,
    rhs: i64,
}

impl Row {
    /// From a `LeZero` expression `e <= 0`: `terms <= -constant`.
    fn from_le(expr: &crate::linear::LinExpr, var_idx: &HashMap<Var, usize>, _n: usize) -> Row {
        Row {
            coeffs: expr.iter().map(|(v, c)| (var_idx[&v], c)).collect(),
            rhs: -expr.constant(),
        }
    }

    fn eval(&self, xs: &[i64]) -> i128 {
        self.coeffs
            .iter()
            .map(|&(j, a)| a as i128 * xs[j] as i128)
            .sum()
    }
}

/// Builds the shifted LP: variables `y = x - lo >= 0`, rows plus upper-bound
/// rows `y_j <= hi_j - lo_j`.
fn build_lp(rows: &[Row], boxes: &[(i128, i128)]) -> Result<Lp, ArithError> {
    let n = boxes.len();
    let mut lp_rows = Vec::with_capacity(rows.len() + n);
    for row in rows {
        let mut coeffs = vec![Rat::ZERO; n];
        let mut shift: i128 = 0;
        for &(j, a) in &row.coeffs {
            coeffs[j] = coeffs[j].add(Rat::from_int(a as i128))?;
            shift += a as i128 * boxes[j].0;
        }
        lp_rows.push(LpRow {
            coeffs,
            rhs: Rat::from_int(row.rhs as i128 - shift),
        });
    }
    for (j, &(lo, hi)) in boxes.iter().enumerate() {
        let mut coeffs = vec![Rat::ZERO; n];
        coeffs[j] = Rat::ONE;
        lp_rows.push(LpRow {
            coeffs,
            rhs: Rat::from_int(hi - lo),
        });
    }
    Ok(Lp {
        num_vars: n,
        rows: lp_rows,
    })
}

/// Picks an integer point inside the boxes, near `hint`, avoiding excluded
/// values; returns `None` if some box is fully excluded.
fn probe_candidate(
    boxes: &[(i128, i128)],
    exclusions: &[BTreeSet<i64>],
    hint: &[i64],
) -> Option<Vec<i64>> {
    let mut out = Vec::with_capacity(boxes.len());
    for (j, &(lo, hi)) in boxes.iter().enumerate() {
        let preferred = (hint.get(j).copied().unwrap_or(0) as i128).clamp(lo, hi) as i64;
        out.push(pick_in_box(lo, hi, &exclusions[j], preferred)?);
    }
    Some(out)
}

/// Finds a value in `[lo, hi]` not in `excl`, as close to `preferred` as a
/// bounded scan allows.
fn pick_in_box(lo: i128, hi: i128, excl: &BTreeSet<i64>, preferred: i64) -> Option<i64> {
    let in_box = |v: i128| v >= lo && v <= hi;
    let ok = |v: i64| !excl.contains(&v);
    if in_box(preferred as i128) && ok(preferred) {
        return Some(preferred);
    }
    // Local scan around the preferred value.
    for d in 1..=(excl.len() as i128 + 2).min(256) {
        for v in [preferred as i128 + d, preferred as i128 - d] {
            if in_box(v) && ok(v as i64) {
                return Some(v as i64);
            }
        }
    }
    // Scan inward from the box edges; |excl| is finite so this terminates
    // with an answer whenever the box has more points than exclusions.
    let width = hi - lo + 1;
    let steps = (excl.len() as i128 + 1).min(width);
    for d in 0..steps {
        for v in [lo + d, hi - d] {
            if in_box(v) && ok(v as i64) {
                return Some(v as i64);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::RelOp;
    use crate::linear::LinExpr;

    fn v(i: u32) -> LinExpr {
        LinExpr::var(Var(i))
    }
    fn solver() -> Solver {
        Solver::default()
    }

    fn expect_model(cs: &[Constraint]) -> Assignment {
        match solver().solve(cs) {
            SolveOutcome::Sat(m) => {
                for c in cs {
                    assert!(
                        c.satisfied_by(|var| m.get(&var).copied()),
                        "model {m:?} violates {c}"
                    );
                }
                m
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn empty_conjunction() {
        assert_eq!(solver().solve(&[]), SolveOutcome::Sat(Assignment::new()));
    }

    #[test]
    fn single_equality() {
        let m = expect_model(&[Constraint::new(v(0).offset(-10), RelOp::Eq)]);
        assert_eq!(m[&Var(0)], 10);
    }

    #[test]
    fn paper_example_h() {
        // Path constraint from §2.1: x != y, then force 2x == x + 10,
        // i.e. x - 10 == 0 with x != y.
        let cs = [
            Constraint::new(v(0).sub(&v(1)), RelOp::Ne),
            Constraint::new(v(0).offset(-10), RelOp::Eq),
        ];
        let m = expect_model(&cs);
        assert_eq!(m[&Var(0)], 10);
        assert_ne!(m[&Var(1)], 10);
    }

    #[test]
    fn paper_example_2_4_infeasible() {
        // (x == y) and (y == x + 10): infeasible.
        let cs = [
            Constraint::new(v(0).sub(&v(1)), RelOp::Eq),
            Constraint::new(v(1).sub(&v(0)).offset(-10), RelOp::Eq),
        ];
        assert_eq!(solver().solve(&cs), SolveOutcome::Unsat);
    }

    #[test]
    fn zero_deadline_degrades_to_unknown() {
        // An already-expired deadline must never panic or spin: every
        // query that reaches the search degrades to Unknown (treated as
        // incompleteness by the driver), and the same query still solves
        // once the deadline is lifted.
        let s = Solver::new(SolverConfig {
            deadline: Some(Duration::ZERO),
            ..SolverConfig::default()
        });
        let cs = [Constraint::new(v(0).offset(-10), RelOp::Eq)];
        assert_eq!(s.solve(&cs), SolveOutcome::Unknown);
        assert!(matches!(solver().solve(&cs), SolveOutcome::Sat(_)));
    }

    #[test]
    fn session_queries_in_decreasing_depth_shrink_the_query() {
        // Regression: the shared-prefix LP screen grows the LP session to
        // the query's variable count. A DFS walk issues deepest queries
        // first, so a *shallower* follow-up query has fewer variables —
        // growing the already-widened LP "down" must be a no-op, not a
        // panic. Budgets are pinned tiny so every query falls through the
        // probes and the finite-domain pass into the LP screen.
        let s = Solver::new(SolverConfig {
            max_fd_nodes: 1,
            max_bb_nodes: 4,
            max_ne_leaves: 4,
            ..SolverConfig::default()
        });
        let mut sess = s.session();
        // z == 0, then 2x - 2y + z != 1 (three variables at depth 2).
        sess.push(&Constraint::new(v(0), RelOp::Eq));
        sess.push(&Constraint::new(
            v(1).scaled(2).sub(&v(2).scaled(2)).add(&v(0)).offset(-1),
            RelOp::Ne,
        ));
        // Deepest flip first: parity-infeasible, reaches the LP screen
        // and widens the shared LP to all three variables.
        let deep = Constraint::new(
            v(1).scaled(2).sub(&v(2).scaled(2)).add(&v(0)).offset(-1),
            RelOp::Eq,
        );
        let out = sess.solve_query(1, &deep, |_| None);
        assert!(!out.is_sat(), "2x - 2y == 1 under z == 0 has no model");
        // Shallower flip second: a single-variable query against the
        // now-wider LP.
        let shallow = Constraint::new(v(0), RelOp::Ne);
        let out = sess.solve_query(0, &shallow, |_| None);
        match out {
            SolveOutcome::Sat(m) => assert_ne!(m[&Var(0)], 0),
            SolveOutcome::Unknown => {}
            SolveOutcome::Unsat => panic!("z != 0 alone is satisfiable"),
        }
    }

    #[test]
    fn session_zero_deadline_degrades_to_unknown() {
        let s = Solver::new(SolverConfig {
            deadline: Some(Duration::ZERO),
            ..SolverConfig::default()
        });
        let mut sess = s.session();
        sess.push(&Constraint::new(v(0).offset(-3), RelOp::Ge));
        let negated = Constraint::new(v(0).offset(-10), RelOp::Eq);
        assert_eq!(
            sess.solve_query(1, &negated, |_| None),
            SolveOutcome::Unknown
        );
    }

    #[test]
    fn exclusion_points() {
        // x != 0, x != 1, x != 2, 0 <= x <= 3  =>  x == 3.
        let cs = [
            Constraint::new(v(0), RelOp::Ne),
            Constraint::new(v(0).offset(-1), RelOp::Ne),
            Constraint::new(v(0).offset(-2), RelOp::Ne),
            Constraint::new(v(0), RelOp::Ge),
            Constraint::new(v(0).offset(-3), RelOp::Le),
        ];
        let m = expect_model(&cs);
        assert_eq!(m[&Var(0)], 3);
    }

    #[test]
    fn fully_excluded_interval_unsat() {
        // 0 <= x <= 1, x != 0, x != 1.
        let cs = [
            Constraint::new(v(0), RelOp::Ge),
            Constraint::new(v(0).offset(-1), RelOp::Le),
            Constraint::new(v(0), RelOp::Ne),
            Constraint::new(v(0).offset(-1), RelOp::Ne),
        ];
        assert_eq!(solver().solve(&cs), SolveOutcome::Unsat);
    }

    #[test]
    fn multi_var_ne_split() {
        // x + y == 4 and x - y != 0 and 0 <= x,y <= 2: forces {x,y} = {0..2},
        // e.g. (1,3) out of range; valid: x=0,y=4 out; so x,y in {2,2} is the
        // only sum-4 point in the box but it violates !=, except (0,4)… the
        // box caps at 2, so the only candidates are (2,2): unsat.
        let cs = [
            Constraint::new(v(0).add(&v(1)).offset(-4), RelOp::Eq),
            Constraint::new(v(0).sub(&v(1)), RelOp::Ne),
            Constraint::new(v(0), RelOp::Ge),
            Constraint::new(v(1), RelOp::Ge),
            Constraint::new(v(0).offset(-2), RelOp::Le),
            Constraint::new(v(1).offset(-2), RelOp::Le),
        ];
        assert_eq!(solver().solve(&cs), SolveOutcome::Unsat);
    }

    #[test]
    fn multi_var_ne_split_sat() {
        // x + y == 4, x != y, 0 <= x,y <= 3.
        let cs = [
            Constraint::new(v(0).add(&v(1)).offset(-4), RelOp::Eq),
            Constraint::new(v(0).sub(&v(1)), RelOp::Ne),
            Constraint::new(v(0), RelOp::Ge),
            Constraint::new(v(1), RelOp::Ge),
            Constraint::new(v(0).offset(-3), RelOp::Le),
            Constraint::new(v(1).offset(-3), RelOp::Le),
        ];
        let m = expect_model(&cs);
        assert_eq!(m[&Var(0)] + m[&Var(1)], 4);
        assert_ne!(m[&Var(0)], m[&Var(1)]);
    }

    #[test]
    fn strict_inequalities_over_integers() {
        // 2x > 5 and 2x < 8  =>  x == 3.
        let cs = [
            Constraint::new(v(0).scaled(2).offset(-5), RelOp::Gt),
            Constraint::new(v(0).scaled(2).offset(-8), RelOp::Lt),
        ];
        let m = expect_model(&cs);
        assert_eq!(m[&Var(0)], 3);
    }

    #[test]
    fn integrality_gap_detected() {
        // 2x == 1 has a rational solution but no integer one.
        let cs = [Constraint::new(v(0).scaled(2).offset(-1), RelOp::Eq)];
        assert_eq!(solver().solve(&cs), SolveOutcome::Unsat);
    }

    #[test]
    fn hint_is_respected_when_consistent() {
        // x >= 5; hint says x = 100: expect exactly 100 back.
        let cs = [Constraint::new(v(0).offset(-5), RelOp::Ge)];
        let out = solver().solve_with_hint(&cs, |_| Some(100));
        match out {
            SolveOutcome::Sat(m) => assert_eq!(m[&Var(0)], 100),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn hint_overridden_when_inconsistent() {
        let cs = [Constraint::new(v(0).offset(-5), RelOp::Ge)];
        let out = solver().solve_with_hint(&cs, |_| Some(3));
        match out {
            SolveOutcome::Sat(m) => assert!(m[&Var(0)] >= 5),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unmentioned_vars_absent_from_model() {
        let cs = [Constraint::new(v(7).offset(-1), RelOp::Eq)];
        let m = expect_model(&cs);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&Var(7)));
    }

    #[test]
    fn bounds_are_enforced() {
        // x >= 2^31 is outside the 32-bit box.
        let cs = [Constraint::new(
            v(0).offset(-(i32::MAX as i64) - 1),
            RelOp::Ge,
        )];
        assert_eq!(solver().solve(&cs), SolveOutcome::Unsat);
    }

    #[test]
    fn boundary_values_reachable() {
        let cs = [Constraint::new(v(0).offset(-(i32::MAX as i64)), RelOp::Ge)];
        let m = expect_model(&cs);
        assert_eq!(m[&Var(0)], i32::MAX as i64);
        let cs = [Constraint::new(v(0).offset(-(i32::MIN as i64)), RelOp::Le)];
        let m = expect_model(&cs);
        assert_eq!(m[&Var(0)], i32::MIN as i64);
    }

    #[test]
    fn dense_system() {
        // x0 + x1 + x2 == 6, x0 == x1, x1 == x2  =>  all 2.
        let sum = v(0).add(&v(1)).add(&v(2)).offset(-6);
        let cs = [
            Constraint::new(sum, RelOp::Eq),
            Constraint::new(v(0).sub(&v(1)), RelOp::Eq),
            Constraint::new(v(1).sub(&v(2)), RelOp::Eq),
        ];
        let m = expect_model(&cs);
        assert_eq!(m[&Var(0)], 2);
        assert_eq!(m[&Var(1)], 2);
        assert_eq!(m[&Var(2)], 2);
    }

    #[test]
    fn needham_style_chain() {
        // A chain of equalities like nonce-matching constraints:
        // m1 == 100, m2 == m1 + 1, m3 == m2 + 1.
        let cs = [
            Constraint::new(v(0).offset(-100), RelOp::Eq),
            Constraint::new(v(1).sub(&v(0)).offset(-1), RelOp::Eq),
            Constraint::new(v(2).sub(&v(1)).offset(-1), RelOp::Eq),
        ];
        let m = expect_model(&cs);
        assert_eq!(m[&Var(2)], 102);
    }

    #[test]
    fn trivially_false_constant() {
        let cs = [Constraint::new(LinExpr::constant_expr(1), RelOp::Eq)];
        assert_eq!(solver().solve(&cs), SolveOutcome::Unsat);
    }

    #[test]
    fn trivially_true_constants_skipped() {
        let cs = [
            Constraint::new(LinExpr::constant_expr(0), RelOp::Eq),
            Constraint::new(v(0).offset(-2), RelOp::Eq),
        ];
        let m = expect_model(&cs);
        assert_eq!(m[&Var(0)], 2);
    }
}
