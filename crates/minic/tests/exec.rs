//! End-to-end execution tests: MiniC source → RAM IR → interpreter.

use dart_minic::compile;
use dart_ram::{Environment, ExtId, Fault, Machine, MachineConfig, Memory, StepOutcome, ZeroEnv};

/// Compiles `src`, writes global initializers, calls `func` with `args`,
/// and returns the terminal outcome.
fn run(src: &str, func: &str, args: &[i64]) -> StepOutcome {
    run_with_env(src, func, args, &mut ZeroEnv)
}

fn run_with_env(src: &str, func: &str, args: &[i64], env: &mut dyn Environment) -> StepOutcome {
    let compiled = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let id = compiled
        .program
        .func_by_name(func)
        .unwrap_or_else(|| panic!("no function {func}"));
    let mut m = Machine::new(&compiled.program, MachineConfig::default());
    for &(off, v) in &compiled.global_inits {
        m.mem_mut()
            .store(dart_ram::GLOBAL_BASE + off as i64, v)
            .unwrap();
    }
    m.call(id, args).unwrap();
    m.run(env)
}

fn returns(src: &str, func: &str, args: &[i64]) -> i64 {
    match run(src, func, args) {
        StepOutcome::Finished { value: Some(v) } => v,
        other => panic!("expected return value, got {other:?}"),
    }
}

#[test]
fn arithmetic_and_precedence() {
    let src = "int f(int a, int b) { return a + b * 3 - (a - b) / 2; }";
    assert_eq!(returns(src, "f", &[10, 4]), 10 + 12 - 3);
}

#[test]
#[allow(clippy::identity_op)] // expected values mirror the MiniC source
fn unary_operators() {
    let src = "int f(int a) { return -a + !a + ~a; }";
    assert_eq!(returns(src, "f", &[5]), -5 + 0 + !5);
    assert_eq!(returns(src, "f", &[0]), 0 + 1 + !0);
}

#[test]
fn comparisons_and_logic() {
    let src = r#"
        int f(int a, int b) {
            if (a < b && b <= 10 || a == 99) return 1;
            return 0;
        }
    "#;
    assert_eq!(returns(src, "f", &[1, 5]), 1);
    assert_eq!(returns(src, "f", &[5, 1]), 0);
    assert_eq!(returns(src, "f", &[99, 0]), 1);
    assert_eq!(returns(src, "f", &[1, 50]), 0);
}

#[test]
fn short_circuit_skips_rhs() {
    // If && were not short-circuit, *p would fault when p == NULL.
    let src = r#"
        int f(int take) {
            int *p = NULL;
            if (take != 0 && *p == 7) return 1;
            return 0;
        }
    "#;
    assert_eq!(returns(src, "f", &[0]), 0);
    // take != 0 → rhs evaluates → NULL deref fault.
    assert!(matches!(
        run(src, "f", &[1]),
        StepOutcome::Faulted(Fault::NullDeref { .. })
    ));
}

#[test]
fn while_and_for_loops() {
    let src = r#"
        int sum_to(int n) {
            int acc = 0;
            int i;
            for (i = 1; i <= n; i++) acc += i;
            return acc;
        }
        int count_down(int n) {
            int c = 0;
            while (n > 0) { n = n - 1; c = c + 1; }
            return c;
        }
    "#;
    assert_eq!(returns(src, "sum_to", &[10]), 55);
    assert_eq!(returns(src, "count_down", &[7]), 7);
}

#[test]
fn do_while_executes_once() {
    let src = r#"
        int f(int n) {
            int c = 0;
            do { c = c + 1; } while (n > 100);
            return c;
        }
    "#;
    assert_eq!(returns(src, "f", &[0]), 1);
}

#[test]
fn break_and_continue() {
    let src = r#"
        int f(int n) {
            int acc = 0;
            int i;
            for (i = 0; i < n; i++) {
                if (i == 3) continue;
                if (i == 6) break;
                acc += i;
            }
            return acc;
        }
    "#;
    // 0+1+2+4+5 = 12
    assert_eq!(returns(src, "f", &[100]), 12);
}

#[test]
fn nested_loops_with_break() {
    let src = r#"
        int f(int n) {
            int total = 0;
            int i; int j;
            for (i = 0; i < n; i++) {
                for (j = 0; j < n; j++) {
                    if (j > i) break;
                    total += 1;
                }
            }
            return total;
        }
    "#;
    // sum_{i=0}^{3} (i+1) = 10 for n=4
    assert_eq!(returns(src, "f", &[4]), 10);
}

#[test]
fn recursion_fibonacci() {
    let src = r#"
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
    "#;
    assert_eq!(returns(src, "fib", &[10]), 55);
}

#[test]
fn mutual_recursion() {
    let src = r#"
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
    "#;
    assert_eq!(returns(src, "is_even", &[10]), 1);
    assert_eq!(returns(src, "is_odd", &[10]), 0);
}

#[test]
fn globals_and_initializers() {
    let src = r#"
        int counter = 5;
        int bump(int d) { counter += d; return counter; }
    "#;
    assert_eq!(returns(src, "bump", &[3]), 8);
}

#[test]
fn pointers_and_address_of() {
    let src = r#"
        int f(int x) {
            int *p = &x;
            *p = *p + 1;
            return x;
        }
    "#;
    assert_eq!(returns(src, "f", &[41]), 42);
}

#[test]
fn pointer_swap_through_function() {
    let src = r#"
        void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
        int f(int x, int y) {
            swap(&x, &y);
            return x * 100 + y;
        }
    "#;
    assert_eq!(returns(src, "f", &[3, 4]), 403);
}

#[test]
fn arrays_and_indexing() {
    let src = r#"
        int f(int n) {
            int a[5];
            int i;
            for (i = 0; i < 5; i++) a[i] = i * i;
            return a[n];
        }
    "#;
    assert_eq!(returns(src, "f", &[3]), 9);
}

#[test]
fn array_out_of_bounds_faults() {
    let src = r#"
        int g[4];
        int f(int n) { return g[n]; }
    "#;
    assert!(matches!(run(src, "f", &[2]), StepOutcome::Finished { .. }));
    assert!(matches!(
        run(src, "f", &[100]),
        StepOutcome::Faulted(Fault::OutOfBounds { .. })
    ));
}

#[test]
fn structs_fields_and_arrow() {
    let src = r#"
        struct point { int x; int y; };
        int f(int a, int b) {
            struct point p;
            struct point *q = &p;
            p.x = a;
            q->y = b;
            return p.x * 1000 + q->y;
        }
    "#;
    assert_eq!(returns(src, "f", &[12, 34]), 12034);
}

#[test]
fn struct_copy_assignment() {
    let src = r#"
        struct pair { int a; int b; };
        int f() {
            struct pair x;
            struct pair y;
            x.a = 7; x.b = 9;
            y = x;
            x.a = 0;
            return y.a * 10 + y.b;
        }
    "#;
    assert_eq!(returns(src, "f", &[]), 79);
}

#[test]
fn nested_structs() {
    let src = r#"
        struct inner { int v; };
        struct outer { struct inner i; int w; };
        int f() {
            struct outer o;
            o.i.v = 3;
            o.w = 4;
            return o.i.v + o.w;
        }
    "#;
    assert_eq!(returns(src, "f", &[]), 7);
}

#[test]
fn linked_list_via_malloc() {
    let src = r#"
        struct node { int v; struct node *next; };
        int f(int n) {
            struct node *head = NULL;
            int i;
            for (i = 0; i < n; i++) {
                struct node *fresh = (struct node *) malloc(sizeof(struct node));
                fresh->v = i;
                fresh->next = head;
                head = fresh;
            }
            int sum = 0;
            while (head != NULL) { sum += head->v; head = head->next; }
            return sum;
        }
    "#;
    assert_eq!(returns(src, "f", &[5]), 10);
}

#[test]
fn paper_2_5_pointer_cast_aliasing() {
    // The paper's §2.5 example: writing through a cast alias must reach a->c.
    let src = r#"
        struct foo { int i; char c; };
        int bar(struct foo *a) {
            if (a->c == 0) {
                *((char *)a + sizeof(int)) = 1;
                if (a->c != 0) return 1; /* the paper aborts here */
            }
            return 0;
        }
        int f() {
            struct foo *a = (struct foo *) malloc(sizeof(struct foo));
            a->i = 0; a->c = 0;
            return bar(a);
        }
    "#;
    assert_eq!(returns(src, "f", &[]), 1);
}

#[test]
fn pointer_arithmetic_scaling() {
    let src = r#"
        struct wide { int a; int b; int c; };
        int f() {
            struct wide arr[3];
            struct wide *p = arr;
            arr[2].b = 99;
            p = p + 2;
            return p->b;
        }
    "#;
    assert_eq!(returns(src, "f", &[]), 99);
}

#[test]
fn pointer_difference() {
    let src = r#"
        int f() {
            int a[10];
            int *p = &a[7];
            int *q = &a[2];
            return p - q;
        }
    "#;
    assert_eq!(returns(src, "f", &[]), 5);
}

#[test]
fn ternary_expression() {
    let src = "int f(int a) { return a > 0 ? a : -a; }";
    assert_eq!(returns(src, "f", &[-9]), 9);
    assert_eq!(returns(src, "f", &[4]), 4);
}

#[test]
fn logical_value_materialization() {
    let src = "int f(int a, int b) { int r = a && b; return r * 10 + (a || b); }";
    assert_eq!(returns(src, "f", &[2, 3]), 11);
    assert_eq!(returns(src, "f", &[0, 3]), 1);
    assert_eq!(returns(src, "f", &[0, 0]), 0);
}

#[test]
fn inc_dec_semantics() {
    let src = r#"
        int f() {
            int x = 5;
            int a = x++;
            int b = ++x;
            int c = x--;
            int d = --x;
            return a * 1000 + b * 100 + c * 10 + d;
        }
    "#;
    // a=5 (x=6), b=7 (x=7), c=7 (x=6), d=5 (x=5)
    assert_eq!(returns(src, "f", &[]), 5775);
}

#[test]
fn abort_statement() {
    let src = "void f(int x) { if (x == 42) abort(); }";
    assert!(matches!(run(src, "f", &[42]), StepOutcome::Aborted { .. }));
    assert!(matches!(run(src, "f", &[0]), StepOutcome::Finished { .. }));
}

#[test]
fn assert_statement() {
    let src = "void f(int x) { assert(x > 0); }";
    match run(src, "f", &[-1]) {
        StepOutcome::Aborted { reason } => assert!(reason.contains("assertion failed")),
        other => panic!("expected abort, got {other:?}"),
    }
    assert!(matches!(run(src, "f", &[1]), StepOutcome::Finished { .. }));
}

#[test]
fn division_by_zero_faults() {
    let src = "int f(int a, int b) { return a / b; }";
    assert_eq!(returns(src, "f", &[7, 2]), 3);
    assert!(matches!(
        run(src, "f", &[7, 0]),
        StepOutcome::Faulted(Fault::DivisionByZero)
    ));
}

#[test]
fn null_dereference_crash() {
    let src = r#"
        struct s { int v; };
        int f(int go) {
            struct s *p = NULL;
            if (go) return p->v;
            return 0;
        }
    "#;
    assert!(matches!(
        run(src, "f", &[1]),
        StepOutcome::Faulted(Fault::NullDeref { .. })
    ));
}

#[test]
fn infinite_loop_detected() {
    let src = "void f() { while (1) { } }";
    assert_eq!(run(src, "f", &[]), StepOutcome::OutOfSteps);
}

#[test]
fn alloca_null_on_huge_request() {
    let src = r#"
        int f(int n) {
            int *p = (int *) alloca(n);
            if (p == NULL) return -1;
            *p = 7;
            return *p;
        }
    "#;
    assert_eq!(returns(src, "f", &[16]), 7);
    assert_eq!(returns(src, "f", &[1 << 40]), -1);
}

#[test]
fn extern_function_values_from_environment() {
    struct Script(Vec<i64>);
    impl Environment for Script {
        fn external_value(&mut self, _e: ExtId, _m: &mut Memory) -> i64 {
            self.0.remove(0)
        }
    }
    let src = r#"
        extern int read_input();
        int f() { return read_input() * 10 + read_input(); }
    "#;
    let out = run_with_env(src, "f", &[], &mut Script(vec![4, 2]));
    assert_eq!(out, StepOutcome::Finished { value: Some(42) });
}

#[test]
fn undeclared_function_becomes_external() {
    struct FortyTwo;
    impl Environment for FortyTwo {
        fn external_value(&mut self, _e: ExtId, _m: &mut Memory) -> i64 {
            42
        }
    }
    // `mystery` is never declared — §3.1: undefined references are the
    // external interface.
    let src = "int f() { return mystery(); }";
    let compiled = compile(src).unwrap();
    assert_eq!(compiled.extern_fns.len(), 1);
    assert_eq!(compiled.extern_fns[0].name, "mystery");
    let out = run_with_env(src, "f", &[], &mut FortyTwo);
    assert_eq!(out, StepOutcome::Finished { value: Some(42) });
}

#[test]
fn extern_vars_listed_in_interface() {
    let src = r#"
        extern int config;
        int f() { return config; }
    "#;
    let compiled = compile(src).unwrap();
    assert_eq!(compiled.extern_vars.len(), 1);
    assert_eq!(compiled.extern_vars[0].name, "config");
}

#[test]
fn char_behaves_as_word() {
    let src = r#"
        int f() {
            char c = 'A';
            c = c + 1;
            return c;
        }
    "#;
    assert_eq!(returns(src, "f", &[]), 'B' as i64);
}

#[test]
fn sizeof_counts_words() {
    let src = r#"
        struct s { int a; int b; int c; };
        int f() { return sizeof(struct s) + sizeof(int) + sizeof(int *); }
    "#;
    assert_eq!(returns(src, "f", &[]), 5);
}

#[test]
fn two_dimensional_arrays() {
    let src = r#"
        int f() {
            int m[3][4];
            int i; int j;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            return m[2][3];
        }
    "#;
    assert_eq!(returns(src, "f", &[]), 23);
}

#[test]
fn array_of_pointers() {
    let src = r#"
        int f() {
            int a = 1; int b = 2; int c = 3;
            int *arr[3];
            arr[0] = &a; arr[1] = &b; arr[2] = &c;
            *arr[1] = 20;
            return a + b + c;
        }
    "#;
    assert_eq!(returns(src, "f", &[]), 24);
}

#[test]
fn paper_ac_controller_concrete() {
    let src = r#"
        int is_room_hot = 0;
        int is_door_closed = 0;
        int ac = 0;
        void ac_controller(int message) {
            if (message == 0) is_room_hot = 1;
            if (message == 1) is_room_hot = 0;
            if (message == 2) { is_door_closed = 0; ac = 0; }
            if (message == 3) {
                is_door_closed = 1;
                if (is_room_hot) ac = 1;
            }
            if (is_room_hot && is_door_closed && !ac) abort();
        }
    "#;
    // A single message can never violate the assertion.
    for msg in [0, 1, 2, 3, 99] {
        assert!(
            matches!(
                run(src, "ac_controller", &[msg]),
                StepOutcome::Finished { .. }
            ),
            "message {msg}"
        );
    }
    // But the 3-then-0 sequence does (needs persistent globals).
    let compiled = compile(src).unwrap();
    let id = compiled.program.func_by_name("ac_controller").unwrap();
    let mut m = Machine::new(&compiled.program, MachineConfig::default());
    m.call(id, &[3]).unwrap();
    assert!(matches!(m.run(&mut ZeroEnv), StepOutcome::Finished { .. }));
    m.call(id, &[0]).unwrap();
    assert!(matches!(m.run(&mut ZeroEnv), StepOutcome::Aborted { .. }));
}

#[test]
fn compile_errors_are_reported() {
    for (src, needle) in [
        ("int f() { return x; }", "unknown variable"),
        ("int f(int a) { return a.b; }", "member access"),
        ("int f(int a) { return *a; }", "cannot dereference"),
        ("int f() { break; }", "outside a loop"),
        ("struct s { struct s inner; };", "recursively contains"),
        ("int x = y;", "must be constant"),
        (
            "struct t { int a; }; int f(struct t v) { return 0; }",
            "scalar or pointer",
        ),
        (
            "int f() { return g(1); } int g(int a, int b) { return a; }",
            "expects 2",
        ),
        ("int f() { 3 = 4; }", "not an lvalue"),
        (
            "int f(); int f() { return 0; } int f() { return 1; }",
            "duplicate function",
        ),
    ] {
        match compile(src) {
            Err(e) => assert!(
                e.message().contains(needle),
                "error `{e}` should mention `{needle}`"
            ),
            Ok(_) => panic!("expected error for: {src}"),
        }
    }
}

#[test]
fn global_struct_and_array_zeroed() {
    let src = r#"
        struct s { int a; int b; };
        struct s gs;
        int ga[4];
        int f() { return gs.a + gs.b + ga[0] + ga[3]; }
    "#;
    assert_eq!(returns(src, "f", &[]), 0);
}

#[test]
fn stack_overflow_on_runaway_recursion() {
    let src = "int f(int n) { return f(n + 1); }";
    assert!(matches!(
        run(src, "f", &[0]),
        StepOutcome::Faulted(Fault::StackOverflow)
    ));
}

#[test]
fn use_after_return_faults() {
    let src = r#"
        int *leak() { int local = 5; return &local; }
        int f() { int *p = leak(); return *p; }
    "#;
    assert!(matches!(
        run(src, "f", &[]),
        StepOutcome::Faulted(Fault::OutOfBounds { .. })
    ));
}

#[test]
fn bit_operations() {
    let src = "int f(int a, int b) { return (a & b) + (a | b) + (a ^ b) + (a << 2) + (a >> 1); }";
    let (a, b) = (12i64, 10i64);
    assert_eq!(
        returns(src, "f", &[a, b]),
        (a & b) + (a | b) + (a ^ b) + (a << 2) + (a >> 1)
    );
}

#[test]
#[allow(clippy::neg_multiply)] // expected value mirrors the MiniC source
fn remainder_and_negative_division() {
    let src = "int f(int a, int b) { return a % b * 100 + a / b; }";
    assert_eq!(returns(src, "f", &[-7, 2]), -1 * 100 + -3);
}

#[test]
fn void_function_returns_nothing() {
    let src = r#"
        int g = 0;
        void set(int v) { g = v; }
        int f() { set(9); return g; }
    "#;
    assert_eq!(returns(src, "f", &[]), 9);
}

#[test]
fn assume_halts_silently_when_false() {
    // assume(e) encodes a precondition (paper §6): a violated assumption
    // ends the run normally — it is not a bug.
    let src = r#"
        int f(int x) {
            assume(x > 0);
            assert(x != 13);
            return x;
        }
    "#;
    assert!(matches!(run(src, "f", &[5]), StepOutcome::Finished { .. }));
    assert!(matches!(run(src, "f", &[-5]), StepOutcome::Halted));
    assert!(matches!(run(src, "f", &[13]), StepOutcome::Aborted { .. }));
}

#[test]
fn switch_dispatch_and_fallthrough() {
    let src = r#"
        int f(int x) {
            int r = 0;
            switch (x) {
                case 1:
                    r = 10;
                    break;
                case 2:
                    r = 20;          /* falls through into case 3 */
                case 3:
                    r = r + 1;
                    break;
                case -4:
                    return -44;
                default:
                    r = 99;
            }
            return r;
        }
    "#;
    assert_eq!(returns(src, "f", &[1]), 10);
    assert_eq!(returns(src, "f", &[2]), 21); // fallthrough
    assert_eq!(returns(src, "f", &[3]), 1);
    assert_eq!(returns(src, "f", &[-4]), -44);
    assert_eq!(returns(src, "f", &[7]), 99);
}

#[test]
fn switch_without_default_skips() {
    let src = r#"
        int f(int x) {
            int r = 5;
            switch (x) { case 1: r = 1; break; }
            return r;
        }
    "#;
    assert_eq!(returns(src, "f", &[1]), 1);
    assert_eq!(returns(src, "f", &[2]), 5);
}

#[test]
fn continue_inside_switch_binds_to_loop() {
    let src = r#"
        int f(int n) {
            int total = 0;
            int i;
            for (i = 0; i < n; i++) {
                switch (i % 3) {
                    case 0:
                        continue;    /* next loop iteration, not the switch */
                    case 1:
                        total += 10;
                        break;
                    default:
                        total += 1;
                }
            }
            return total;
        }
    "#;
    // i = 0..6: i%3 = 0,1,2,0,1,2 -> 10+1+10+1 = 22
    assert_eq!(returns(src, "f", &[6]), 22);
}

#[test]
fn switch_errors() {
    assert!(
        compile("int f(int x) { switch (x) { case 1: break; case 1: break; } return 0; }").is_err()
    );
    assert!(
        compile("int f(int x) { switch (x) { default: break; case 1: break; } return 0; }")
            .is_err()
    );
    assert!(compile(
        "int f(int x) { switch (x) { case 1: break; default: break; default: break; } return 0; }"
    )
    .is_err());
}
