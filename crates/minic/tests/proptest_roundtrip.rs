//! Property test: pretty-print ∘ parse is the identity on ASTs.
//!
//! Random ASTs are generated structurally (expressions and statements over
//! a fixed set of variable names), printed with `print_unit`, re-parsed,
//! and compared position-insensitively.

use dart_minic::ast::*;
use dart_minic::token::Pos;
use dart_minic::{parse, print_unit};
use proptest::prelude::*;

fn pos() -> Pos {
    Pos::default()
}

fn ident() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string())
    ]
}

fn binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Rem),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Ne),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
        Just(BinaryOp::LogAnd),
        Just(BinaryOp::LogOr),
        Just(BinaryOp::BitAnd),
        Just(BinaryOp::BitOr),
        Just(BinaryOp::BitXor),
        Just(BinaryOp::Shl),
        Just(BinaryOp::Shr),
    ]
}

fn unop() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Neg),
        Just(UnaryOp::Not),
        Just(UnaryOp::BitNot),
        // Deref/AddrOf need type-correct operands to *compile*, but for a
        // pure parse round-trip they are fine on any expression.
        Just(UnaryOp::Deref),
        Just(UnaryOp::AddrOf),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| Expr::IntLit(v, pos())),
        Just(Expr::Null(pos())),
        ident().prop_map(|n| Expr::Ident(n, pos())),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (unop(), inner.clone()).prop_map(|(op, e)| Expr::Unary(op, Box::new(e), pos())),
            (binop(), inner.clone(), inner.clone())
                .prop_map(|(op, l, r)| { Expr::Binary(op, Box::new(l), Box::new(r), pos()) }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| {
                Expr::Ternary(Box::new(c), Box::new(t), Box::new(f), pos())
            }),
            (ident(), proptest::collection::vec(inner.clone(), 0..3)).prop_map(|(name, args)| {
                Expr::Call {
                    name,
                    args,
                    pos: pos(),
                }
            }),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::Index(
                Box::new(b),
                Box::new(i),
                pos()
            )),
            (inner.clone(), ident(), any::<bool>()).prop_map(|(b, f, arrow)| {
                Expr::Member {
                    base: Box::new(b),
                    field: f,
                    arrow,
                    pos: pos(),
                }
            }),
            inner.clone().prop_map(|e| Expr::Malloc(Box::new(e), pos())),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        expr().prop_map(|e| Stmt::Return(Some(e), pos())),
        Just(Stmt::Return(None, pos())),
        Just(Stmt::Abort(pos())),
        expr().prop_map(|e| Stmt::Assert(e, pos())),
        expr().prop_map(|e| Stmt::Assume(e, pos())),
        (ident(), expr()).prop_map(|(n, e)| Stmt::Assign {
            lhs: Expr::Ident(n, pos()),
            op: AssignOp::Assign,
            rhs: e,
            pos: pos(),
        }),
        expr().prop_map(|e| Stmt::ExprStmt(e, pos())),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (expr(), inner.clone(), proptest::option::of(inner.clone())).prop_map(|(c, t, e)| {
                Stmt::If {
                    cond: c,
                    then: Box::new(t),
                    els: e.map(Box::new),
                    pos: pos(),
                }
            }),
            (expr(), inner.clone()).prop_map(|(c, b)| Stmt::While {
                cond: c,
                body: Box::new(b),
                pos: pos(),
            }),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Stmt::Block),
        ]
    })
}

fn unit() -> impl Strategy<Value = Unit> {
    proptest::collection::vec(stmt(), 0..6).prop_map(|body| Unit {
        items: vec![Item::Func {
            ret: TypeAst::Int,
            ret_ptr: 0,
            name: "f".into(),
            params: vec![
                (
                    TypeAst::Int,
                    Declarator {
                        name: "a".into(),
                        ptr_depth: 0,
                        array_dims: vec![],
                    },
                ),
                (
                    TypeAst::Int,
                    Declarator {
                        name: "b".into(),
                        ptr_depth: 1,
                        array_dims: vec![],
                    },
                ),
            ],
            body: Some(body),
            is_extern: false,
            pos: pos(),
        }],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Printer fixpoint: printing, reparsing and printing again yields the
    /// same text (the printed form is canonical — the printer braces all
    /// bodies, so the raw ASTs may differ by `Block` wrappers).
    #[test]
    fn print_parse_print_fixpoint(u in unit()) {
        let printed = print_unit(&u);
        let reparsed = match parse(&printed) {
            Ok(r) => r,
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "printed source failed to parse: {e}\n{printed}"
                )))
            }
        };
        prop_assert_eq!(&printed, &print_unit(&reparsed), "not a fixpoint:\n{}", printed);
    }
}
