//! # dart-minic — a C-like language front end for DART
//!
//! The DART paper (PLDI 2005) tests C programs, instrumenting them with CIL.
//! This crate is the stand-in substrate: **MiniC**, a C subset covering
//! everything the paper's examples and experiments use — `int`/`char`
//! scalars, pointers, structs (including self-referential ones), fixed
//! arrays, casts and `sizeof`, pointer arithmetic, short-circuit `&&`/`||`,
//! `?:`, the full statement repertoire, `malloc`/`alloca`, `assert`/`abort`,
//! and `extern` variables/functions forming the program's *external
//! interface* (§3.1).
//!
//! Programs compile to the RAM-machine IR of [`dart_ram`]; the compiled
//! artifact ([`CompiledProgram`]) also carries struct layouts, function
//! signatures and the extracted interface — everything the DART driver
//! needs to generate `random_init`-style inputs (§3.2).
//!
//! ## Quickstart
//!
//! ```
//! use dart_ram::{Machine, MachineConfig, StepOutcome, ZeroEnv};
//!
//! let compiled = dart_minic::compile(r#"
//!     int gcd(int a, int b) {
//!         while (b != 0) { int t = b; b = a % b; a = t; }
//!         return a;
//!     }
//! "#)?;
//! let gcd = compiled.program.func_by_name("gcd").unwrap();
//! let mut m = Machine::new(&compiled.program, MachineConfig::default());
//! m.call(gcd, &[54, 24])?;
//! assert_eq!(m.run(&mut ZeroEnv), StepOutcome::Finished { value: Some(6) });
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod types;

pub use compile::{compile, compile_unit, CompiledProgram, ExternFn, ExternVar, FnSig};
pub use diag::CompileError;
pub use parser::parse;
pub use pretty::print_unit;
pub use types::{Field, StructId, StructInfo, Type, TypeTable};
