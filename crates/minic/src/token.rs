//! Tokens of the MiniC language.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub pos: Pos,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal (decimal, hex `0x…`, or character literal).
    Int(i64),
    /// Identifier.
    Ident(String),
    /// Keyword.
    Keyword(Keyword),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `int`
    Int,
    /// `char`
    Char,
    /// `void`
    Void,
    /// `struct`
    Struct,
    /// `extern`
    Extern,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `do`
    Do,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `sizeof`
    Sizeof,
    /// `assert` (expands to `if (!e) abort()`)
    Assert,
    /// `assume` (expands to `if (!e) halt` — silently ends the run;
    /// used to encode preconditions, §6 of the paper)
    Assume,
    /// `switch`
    Switch,
    /// `case`
    Case,
    /// `default`
    Default,
    /// `abort`
    Abort,
    /// `NULL`
    Null,
    /// `malloc`
    Malloc,
    /// `alloca`
    Alloca,
}

impl Keyword {
    /// Looks up a keyword by spelling. (Infallible lookup returning
    /// `Option`, so `std::str::FromStr` with its error type is a poor
    /// fit.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "char" => Keyword::Char,
            "void" => Keyword::Void,
            "struct" => Keyword::Struct,
            "extern" => Keyword::Extern,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "do" => Keyword::Do,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "sizeof" => Keyword::Sizeof,
            "assert" => Keyword::Assert,
            "assume" => Keyword::Assume,
            "switch" => Keyword::Switch,
            "case" => Keyword::Case,
            "default" => Keyword::Default,
            "abort" => Keyword::Abort,
            "NULL" => Keyword::Null,
            "malloc" => Keyword::Malloc,
            "alloca" => Keyword::Alloca,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Not,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `?`
    Question,
    /// `:`
    Colon,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k:?}`"),
            TokenKind::Punct(p) => write!(f, "`{p:?}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
