//! Compile-time diagnostics.

use crate::token::Pos;
use std::fmt;

/// An error produced while lexing, parsing, or compiling MiniC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    message: String,
    pos: Pos,
}

impl CompileError {
    /// Creates an error at `pos`.
    pub fn new(message: impl Into<String>, pos: Pos) -> CompileError {
        CompileError {
            message: message.into(),
            pos,
        }
    }

    /// The human-readable message (no position).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where the error occurred.
    pub fn pos(&self) -> Pos {
        self.pos
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = CompileError::new("bad thing", Pos { line: 3, col: 7 });
        assert_eq!(e.to_string(), "3:7: bad thing");
        assert_eq!(e.message(), "bad thing");
        assert_eq!(e.pos(), Pos { line: 3, col: 7 });
    }
}
