//! The MiniC abstract syntax tree.

use crate::token::Pos;

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Base type syntax (before declarator stars/arrays are applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeAst {
    /// `int`
    Int,
    /// `char`
    Char,
    /// `void`
    Void,
    /// `struct NAME`
    Struct(String),
}

/// A declarator: `*`s, a name, and array dimensions (`int **x[3][4]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declarator {
    /// Declared name.
    pub name: String,
    /// Number of leading `*`s.
    pub ptr_depth: u32,
    /// Array dimensions, outermost first.
    pub array_dims: Vec<usize>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `struct S { … };`
    StructDef {
        /// Struct tag.
        name: String,
        /// Fields in declaration order.
        fields: Vec<(TypeAst, Declarator)>,
        /// Source position.
        pos: Pos,
    },
    /// A global variable definition, or an `extern` variable declaration
    /// (part of the program's external interface, §3.1).
    Global {
        /// Base type.
        ty: TypeAst,
        /// Declarator.
        decl: Declarator,
        /// Optional constant initializer.
        init: Option<Expr>,
        /// Whether declared `extern` (environment-controlled).
        is_extern: bool,
        /// Source position.
        pos: Pos,
    },
    /// A function definition, or an `extern` function declaration.
    Func {
        /// Return base type.
        ret: TypeAst,
        /// Return pointer depth (`int *f()`).
        ret_ptr: u32,
        /// Function name.
        name: String,
        /// Parameters.
        params: Vec<(TypeAst, Declarator)>,
        /// Body; `None` for `extern` declarations.
        body: Option<Vec<Stmt>>,
        /// Whether declared `extern`.
        is_extern: bool,
        /// Source position.
        pos: Pos,
    },
}

/// Binary operators (logical `&&`/`||` compile to branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+` (pointer-aware)
    Add,
    /// `-` (pointer-aware)
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `*e`
    Deref,
    /// `&e`
    AddrOf,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer or character literal.
    IntLit(i64, Pos),
    /// `NULL`
    Null(Pos),
    /// Variable reference.
    Ident(String, Pos),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>, Pos),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>, Pos),
    /// `c ? t : e`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>, Pos),
    /// Function call (defined or external).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>, Pos),
    /// `base.field` or `base->field`
    Member {
        /// The struct (or struct pointer) expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `->` rather than `.`.
        arrow: bool,
        /// Source position.
        pos: Pos,
    },
    /// `(type) e`
    Cast {
        /// Target base type.
        ty: TypeAst,
        /// Target pointer depth.
        ptr_depth: u32,
        /// Operand.
        expr: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `sizeof(type)` — counts words (see DESIGN.md).
    SizeofType {
        /// Measured base type.
        ty: TypeAst,
        /// Pointer depth.
        ptr_depth: u32,
        /// Source position.
        pos: Pos,
    },
    /// `malloc(words)`
    Malloc(Box<Expr>, Pos),
    /// `alloca(words)` — may yield NULL (bounded stack).
    Alloca(Box<Expr>, Pos),
    /// `lv++`, `lv--`, `++lv`, `--lv`
    IncDec {
        /// The updated lvalue.
        target: Box<Expr>,
        /// `true` for `++`.
        inc: bool,
        /// `true` for postfix.
        postfix: bool,
        /// Source position.
        pos: Pos,
    },
}

impl Expr {
    /// The source position of this expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::IntLit(_, p)
            | Expr::Null(p)
            | Expr::Ident(_, p)
            | Expr::Unary(_, _, p)
            | Expr::Binary(_, _, _, p)
            | Expr::Ternary(_, _, _, p)
            | Expr::Call { pos: p, .. }
            | Expr::Index(_, _, p)
            | Expr::Member { pos: p, .. }
            | Expr::Cast { pos: p, .. }
            | Expr::SizeofType { pos: p, .. }
            | Expr::Malloc(_, p)
            | Expr::Alloca(_, p)
            | Expr::IncDec { pos: p, .. } => *p,
        }
    }
}

/// Compound assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ … }`
    Block(Vec<Stmt>),
    /// Local declaration with optional initializer.
    Decl {
        /// Base type.
        ty: TypeAst,
        /// Declarator.
        decl: Declarator,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `if (cond) then else els`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Else branch.
        els: Option<Box<Stmt>>,
        /// Source position.
        pos: Pos,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `for (init; cond; step) body`
    For {
        /// Optional init statement.
        init: Option<Box<Stmt>>,
        /// Optional loop condition.
        cond: Option<Expr>,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Box<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `return e?;`
    Return(Option<Expr>, Pos),
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
    /// `assert(e);` — aborts when false.
    Assert(Expr, Pos),
    /// `assume(e);` — silently halts the run when false (precondition).
    Assume(Expr, Pos),
    /// `switch (e) { case k: … default: … }` with C fallthrough.
    Switch {
        /// The switched-on expression.
        scrutinee: Expr,
        /// `(label value, body)` in source order; bodies fall through.
        cases: Vec<(i64, Vec<Stmt>)>,
        /// The `default:` body, if present (always placed last).
        default: Option<Vec<Stmt>>,
        /// Source position.
        pos: Pos,
    },
    /// `abort();`
    Abort(Pos),
    /// `lhs op rhs;`
    Assign {
        /// Assigned lvalue.
        lhs: Expr,
        /// `=`, `+=` or `-=`.
        op: AssignOp,
        /// Right-hand side.
        rhs: Expr,
        /// Source position.
        pos: Pos,
    },
    /// An expression evaluated for effect (calls, `x++`).
    ExprStmt(Expr, Pos),
}
