//! The MiniC lexer.
//!
//! Supports decimal and hexadecimal integers, character literals, `//` and
//! `/* */` comments, and every operator the grammar uses.

use crate::diag::CompileError;
use crate::token::{Keyword, Pos, Punct, Token, TokenKind};

/// Lexes `src` into tokens (terminated by [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed numbers, unterminated comments or
/// character literals, and unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'s str>,
    i: usize,
    line: u32,
    col: u32,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Lexer<'s> {
        Lexer {
            chars: src.chars().collect(),
            src: std::marker::PhantomData,
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(msg, self.pos())
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(out);
            };
            let kind = if c.is_ascii_digit() {
                self.number()?
            } else if c == '\'' {
                self.char_literal()?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.ident()
            } else {
                self.punct()?
            };
            out.push(Token { kind, pos });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(CompileError::new("unterminated comment", start)),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, CompileError> {
        let mut text = String::new();
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            if text.is_empty() {
                return Err(self.error("hex literal needs digits"));
            }
            let v = i64::from_str_radix(&text, 16)
                .map_err(|_| self.error("hex literal out of range"))?;
            return Ok(TokenKind::Int(v));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let v: i64 = text
            .parse()
            .map_err(|_| self.error("integer literal out of range"))?;
        Ok(TokenKind::Int(v))
    }

    fn char_literal(&mut self) -> Result<TokenKind, CompileError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some('\\') => match self.bump() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('0') => '\0',
                Some('\\') => '\\',
                Some('\'') => '\'',
                _ => return Err(self.error("bad escape in character literal")),
            },
            Some(c) if c != '\'' => c,
            _ => return Err(self.error("empty character literal")),
        };
        if self.bump() != Some('\'') {
            return Err(self.error("unterminated character literal"));
        }
        Ok(TokenKind::Int(c as i64))
    }

    fn ident(&mut self) -> TokenKind {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::from_str(&text) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(text),
        }
    }

    fn punct(&mut self) -> Result<TokenKind, CompileError> {
        use Punct::*;
        let c = self.bump().expect("caller checked");
        let two = |lexer: &mut Lexer<'_>, next: char, yes: Punct, no: Punct| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        let p = match c {
            '(' => LParen,
            ')' => RParen,
            '{' => LBrace,
            '}' => RBrace,
            '[' => LBracket,
            ']' => RBracket,
            ';' => Semi,
            ',' => Comma,
            '.' => Dot,
            '?' => Question,
            ':' => Colon,
            '~' => Tilde,
            '^' => Caret,
            '%' => Percent,
            '/' => Slash,
            '*' => Star,
            '+' => match self.peek() {
                Some('+') => {
                    self.bump();
                    PlusPlus
                }
                Some('=') => {
                    self.bump();
                    PlusAssign
                }
                _ => Plus,
            },
            '-' => match self.peek() {
                Some('-') => {
                    self.bump();
                    MinusMinus
                }
                Some('=') => {
                    self.bump();
                    MinusAssign
                }
                Some('>') => {
                    self.bump();
                    Arrow
                }
                _ => Minus,
            },
            '=' => two(self, '=', EqEq, Assign),
            '!' => two(self, '=', NotEq, Not),
            '<' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Le
                }
                Some('<') => {
                    self.bump();
                    Shl
                }
                _ => Lt,
            },
            '>' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Ge
                }
                Some('>') => {
                    self.bump();
                    Shr
                }
                _ => Gt,
            },
            '&' => two(self, '&', AmpAmp, Amp),
            '|' => two(self, '|', PipePipe, Pipe),
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        };
        Ok(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_and_idents() {
        let ks = kinds("x 42 0x1F foo_bar");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Int(42),
                TokenKind::Int(31),
                TokenKind::Ident("foo_bar".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_recognized() {
        let ks = kinds("int if NULL sizeof");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Keyword(Keyword::If),
                TokenKind::Keyword(Keyword::Null),
                TokenKind::Keyword(Keyword::Sizeof),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(kinds("'a'")[0], TokenKind::Int('a' as i64));
        assert_eq!(kinds("'\\n'")[0], TokenKind::Int(10));
        assert_eq!(kinds("'\\0'")[0], TokenKind::Int(0));
    }

    #[test]
    fn multi_char_operators() {
        use Punct::*;
        let ks = kinds("== != <= >= && || << >> -> ++ -- += -=");
        let expect = [
            EqEq,
            NotEq,
            Le,
            Ge,
            AmpAmp,
            PipePipe,
            Shl,
            Shr,
            Arrow,
            PlusPlus,
            MinusMinus,
            PlusAssign,
            MinusAssign,
        ];
        for (k, p) in ks.iter().zip(expect) {
            assert_eq!(*k, TokenKind::Punct(p));
        }
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // line comment\n b /* block\n comment */ c");
        assert_eq!(ks.len(), 4); // a b c eof
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn bad_character_errors() {
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn unterminated_char_literal_errors() {
        assert!(lex("'a").is_err());
        assert!(lex("''").is_err());
    }
}
