//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::diag::CompileError;
use crate::lexer::lex;
use crate::token::{Keyword, Pos, Punct, Token, TokenKind};

/// Parses a MiniC source file into a [`Unit`].
///
/// # Errors
///
/// Returns the first lexing or parsing error.
pub fn parse(src: &str) -> Result<Unit, CompileError> {
    let tokens = lex(src)?;
    Parser { tokens, i: 0 }.unit()
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let idx = (self.i + off).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.i].kind.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        k
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(msg, self.pos())
    }

    fn eat_punct(&mut self, p: Punct) -> Result<(), CompileError> {
        if *self.peek() == TokenKind::Punct(p) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{p:?}`, found {}", self.peek())))
        }
    }

    fn at_punct(&self, p: Punct) -> bool {
        *self.peek() == TokenKind::Punct(p)
    }

    fn eat_if_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    /// Whether the current token starts a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Keyword(Keyword::Int)
                | TokenKind::Keyword(Keyword::Char)
                | TokenKind::Keyword(Keyword::Void)
                | TokenKind::Keyword(Keyword::Struct)
        )
    }

    fn base_type(&mut self) -> Result<TypeAst, CompileError> {
        match self.bump() {
            TokenKind::Keyword(Keyword::Int) => Ok(TypeAst::Int),
            TokenKind::Keyword(Keyword::Char) => Ok(TypeAst::Char),
            TokenKind::Keyword(Keyword::Void) => Ok(TypeAst::Void),
            TokenKind::Keyword(Keyword::Struct) => Ok(TypeAst::Struct(self.ident()?)),
            other => Err(self.error(format!("expected a type, found {other}"))),
        }
    }

    fn declarator(&mut self) -> Result<Declarator, CompileError> {
        let mut ptr_depth = 0;
        while self.eat_if_punct(Punct::Star) {
            ptr_depth += 1;
        }
        let name = self.ident()?;
        let mut array_dims = Vec::new();
        while self.eat_if_punct(Punct::LBracket) {
            match self.bump() {
                TokenKind::Int(n) if n > 0 => array_dims.push(n as usize),
                other => {
                    return Err(self.error(format!("expected positive array size, found {other}")))
                }
            }
            self.eat_punct(Punct::RBracket)?;
        }
        Ok(Declarator {
            name,
            ptr_depth,
            array_dims,
        })
    }

    fn unit(mut self) -> Result<Unit, CompileError> {
        let mut items = Vec::new();
        while *self.peek() != TokenKind::Eof {
            items.push(self.item()?);
        }
        Ok(Unit { items })
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        let pos = self.pos();
        let is_extern = if let TokenKind::Keyword(Keyword::Extern) = self.peek() {
            self.bump();
            true
        } else {
            false
        };

        // struct definition: `struct S { … };`
        if let TokenKind::Keyword(Keyword::Struct) = self.peek() {
            if let TokenKind::Ident(_) = self.peek_at(1) {
                if *self.peek_at(2) == TokenKind::Punct(Punct::LBrace) {
                    if is_extern {
                        return Err(self.error("`extern` struct definitions are not allowed"));
                    }
                    return self.struct_def(pos);
                }
            }
        }

        if !self.at_type() {
            return Err(self.error(format!("expected a declaration, found {}", self.peek())));
        }
        let ty = self.base_type()?;
        let decl = self.declarator()?;

        // Function: name followed by `(`.
        if self.at_punct(Punct::LParen) {
            if !decl.array_dims.is_empty() {
                return Err(self.error("functions cannot return arrays"));
            }
            return self.func(ty, decl.ptr_depth, decl.name, is_extern, pos);
        }

        // Global variable.
        let init = if self.eat_if_punct(Punct::Assign) {
            if is_extern {
                return Err(self.error("`extern` variables cannot have initializers"));
            }
            Some(self.expr()?)
        } else {
            None
        };
        self.eat_punct(Punct::Semi)?;
        Ok(Item::Global {
            ty,
            decl,
            init,
            is_extern,
            pos,
        })
    }

    fn struct_def(&mut self, pos: Pos) -> Result<Item, CompileError> {
        self.bump(); // struct
        let name = self.ident()?;
        self.eat_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat_if_punct(Punct::RBrace) {
            let fty = self.base_type()?;
            loop {
                let fd = self.declarator()?;
                fields.push((fty.clone(), fd));
                if !self.eat_if_punct(Punct::Comma) {
                    break;
                }
            }
            self.eat_punct(Punct::Semi)?;
        }
        self.eat_punct(Punct::Semi)?;
        Ok(Item::StructDef { name, fields, pos })
    }

    fn func(
        &mut self,
        ret: TypeAst,
        ret_ptr: u32,
        name: String,
        is_extern: bool,
        pos: Pos,
    ) -> Result<Item, CompileError> {
        self.eat_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.at_punct(Punct::RParen) {
            // `(void)` means zero parameters.
            if *self.peek() == TokenKind::Keyword(Keyword::Void)
                && *self.peek_at(1) == TokenKind::Punct(Punct::RParen)
            {
                self.bump();
            } else {
                loop {
                    let pty = self.base_type()?;
                    let pd = self.declarator()?;
                    params.push((pty, pd));
                    if !self.eat_if_punct(Punct::Comma) {
                        break;
                    }
                }
            }
        }
        self.eat_punct(Punct::RParen)?;

        if self.eat_if_punct(Punct::Semi) {
            // Declaration only (extern or forward).
            return Ok(Item::Func {
                ret,
                ret_ptr,
                name,
                params,
                body: None,
                is_extern,
                pos,
            });
        }
        if is_extern {
            return Err(self.error("`extern` functions cannot have bodies"));
        }
        self.eat_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        Ok(Item::Func {
            ret,
            ret_ptr,
            name,
            params,
            body: Some(body),
            is_extern,
            pos,
        })
    }

    /// Parses statements until the matching `}` (already inside the block).
    fn block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat_if_punct(Punct::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match self.peek() {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if *self.peek() == TokenKind::Keyword(Keyword::Else) {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    els,
                    pos,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body, pos })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                match self.bump() {
                    TokenKind::Keyword(Keyword::While) => {}
                    other => return Err(self.error(format!("expected `while`, found {other}"))),
                }
                self.eat_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt::DoWhile { body, cond, pos })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let init = if self.at_punct(Punct::Semi) {
                    self.bump();
                    None
                } else {
                    Some(Box::new(self.simple_or_decl(true)?))
                };
                let cond = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_punct(Punct::Semi)?;
                let step = if self.at_punct(Punct::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.eat_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    pos,
                })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let v = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt::Return(v, pos))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt::Break(pos))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            TokenKind::Keyword(Keyword::Assert) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let e = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt::Assert(e, pos))
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let scrutinee = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                self.eat_punct(Punct::LBrace)?;
                let mut cases: Vec<(i64, Vec<Stmt>)> = Vec::new();
                let mut default: Option<Vec<Stmt>> = None;
                loop {
                    match self.peek() {
                        TokenKind::Punct(Punct::RBrace) => {
                            self.bump();
                            break;
                        }
                        TokenKind::Keyword(Keyword::Case) => {
                            self.bump();
                            let negative = self.eat_if_punct(Punct::Minus);
                            let value = match self.bump() {
                                TokenKind::Int(v) => {
                                    if negative {
                                        -v
                                    } else {
                                        v
                                    }
                                }
                                other => {
                                    return Err(self
                                        .error(format!("expected case constant, found {other}")))
                                }
                            };
                            if cases.iter().any(|(k, _)| *k == value) {
                                return Err(self.error(format!("duplicate case {value}")));
                            }
                            if default.is_some() {
                                return Err(self.error("`case` after `default`".to_string()));
                            }
                            self.eat_punct(Punct::Colon)?;
                            cases.push((value, self.case_body()?));
                        }
                        TokenKind::Keyword(Keyword::Default) => {
                            self.bump();
                            if default.is_some() {
                                return Err(self.error("duplicate `default`"));
                            }
                            self.eat_punct(Punct::Colon)?;
                            default = Some(self.case_body()?);
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected `case`, `default` or `}}`, found {other}"
                            )))
                        }
                    }
                }
                Ok(Stmt::Switch {
                    scrutinee,
                    cases,
                    default,
                    pos,
                })
            }
            TokenKind::Keyword(Keyword::Assume) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let e = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt::Assume(e, pos))
            }
            TokenKind::Keyword(Keyword::Abort) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                self.eat_punct(Punct::RParen)?;
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt::Abort(pos))
            }
            _ => {
                let s = self.simple_or_decl(false)?;
                self.eat_punct(Punct::Semi)?;
                Ok(s)
            }
        }
    }

    /// Statements of one `case` arm: up to the next `case`/`default`/`}`.
    fn case_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Punct(Punct::RBrace)
                | TokenKind::Keyword(Keyword::Case)
                | TokenKind::Keyword(Keyword::Default) => return Ok(stmts),
                TokenKind::Eof => return Err(self.error("unterminated switch")),
                _ => stmts.push(self.stmt()?),
            }
        }
    }

    /// A declaration or a simple (assignment/expression) statement.
    /// When `in_for` is set, eats the trailing `;` itself.
    fn simple_or_decl(&mut self, in_for: bool) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        if self.at_type() {
            let ty = self.base_type()?;
            let decl = self.declarator()?;
            let init = if self.eat_if_punct(Punct::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            if in_for {
                self.eat_punct(Punct::Semi)?;
            }
            return Ok(Stmt::Decl {
                ty,
                decl,
                init,
                pos,
            });
        }
        let s = self.simple_stmt()?;
        if in_for {
            self.eat_punct(Punct::Semi)?;
        }
        Ok(s)
    }

    /// Assignment or expression statement (no trailing `;`).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        let lhs = self.expr()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(AssignOp::Assign),
            TokenKind::Punct(Punct::PlusAssign) => Some(AssignOp::AddAssign),
            TokenKind::Punct(Punct::MinusAssign) => Some(AssignOp::SubAssign),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.expr()?;
            Ok(Stmt::Assign { lhs, op, rhs, pos })
        } else {
            Ok(Stmt::ExprStmt(lhs, pos))
        }
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        let c = self.logical_or()?;
        if self.eat_if_punct(Punct::Question) {
            let t = self.expr()?;
            self.eat_punct(Punct::Colon)?;
            let e = self.expr()?;
            Ok(Expr::Ternary(Box::new(c), Box::new(t), Box::new(e), pos))
        } else {
            Ok(c)
        }
    }

    fn binary_level<F>(
        &mut self,
        next: F,
        table: &[(Punct, BinaryOp)],
    ) -> Result<Expr, CompileError>
    where
        F: Fn(&mut Self) -> Result<Expr, CompileError>,
    {
        let pos = self.pos();
        let mut lhs = next(self)?;
        'outer: loop {
            for &(p, op) in table {
                if self.at_punct(p) {
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos);
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logical_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::logical_and, &[(Punct::PipePipe, BinaryOp::LogOr)])
    }

    fn logical_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bit_or, &[(Punct::AmpAmp, BinaryOp::LogAnd)])
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bit_xor, &[(Punct::Pipe, BinaryOp::BitOr)])
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bit_and, &[(Punct::Caret, BinaryOp::BitXor)])
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::equality, &[(Punct::Amp, BinaryOp::BitAnd)])
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::relational,
            &[(Punct::EqEq, BinaryOp::Eq), (Punct::NotEq, BinaryOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::shift,
            &[
                (Punct::Le, BinaryOp::Le),
                (Punct::Ge, BinaryOp::Ge),
                (Punct::Lt, BinaryOp::Lt),
                (Punct::Gt, BinaryOp::Gt),
            ],
        )
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::additive,
            &[(Punct::Shl, BinaryOp::Shl), (Punct::Shr, BinaryOp::Shr)],
        )
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::multiplicative,
            &[(Punct::Plus, BinaryOp::Add), (Punct::Minus, BinaryOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::unary,
            &[
                (Punct::Star, BinaryOp::Mul),
                (Punct::Slash, BinaryOp::Div),
                (Punct::Percent, BinaryOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        // Cast: `(` type … `)` unary
        if self.at_punct(Punct::LParen) && self.peek_at(1_usize).is_type_start() {
            self.bump(); // (
            let ty = self.base_type()?;
            let mut ptr_depth = 0;
            while self.eat_if_punct(Punct::Star) {
                ptr_depth += 1;
            }
            self.eat_punct(Punct::RParen)?;
            let e = self.unary()?;
            return Ok(Expr::Cast {
                ty,
                ptr_depth,
                expr: Box::new(e),
                pos,
            });
        }
        let un = match self.peek() {
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Not) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnaryOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnaryOp::AddrOf),
            _ => None,
        };
        if let Some(op) = un {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(e), pos));
        }
        if matches!(
            self.peek(),
            TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus)
        ) {
            let inc = self.at_punct(Punct::PlusPlus);
            self.bump();
            let target = self.unary()?;
            return Ok(Expr::IncDec {
                target: Box::new(target),
                inc,
                postfix: false,
                pos,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let pos = self.pos();
            if self.eat_if_punct(Punct::LBracket) {
                let idx = self.expr()?;
                self.eat_punct(Punct::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx), pos);
            } else if self.eat_if_punct(Punct::Dot) {
                let field = self.ident()?;
                e = Expr::Member {
                    base: Box::new(e),
                    field,
                    arrow: false,
                    pos,
                };
            } else if self.eat_if_punct(Punct::Arrow) {
                let field = self.ident()?;
                e = Expr::Member {
                    base: Box::new(e),
                    field,
                    arrow: true,
                    pos,
                };
            } else if self.at_punct(Punct::PlusPlus) || self.at_punct(Punct::MinusMinus) {
                let inc = self.at_punct(Punct::PlusPlus);
                self.bump();
                e = Expr::IncDec {
                    target: Box::new(e),
                    inc,
                    postfix: true,
                    pos,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::IntLit(v, pos)),
            TokenKind::Keyword(Keyword::Null) => Ok(Expr::Null(pos)),
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.eat_punct(Punct::LParen)?;
                let ty = self.base_type()?;
                let mut ptr_depth = 0;
                while self.eat_if_punct(Punct::Star) {
                    ptr_depth += 1;
                }
                self.eat_punct(Punct::RParen)?;
                Ok(Expr::SizeofType { ty, ptr_depth, pos })
            }
            TokenKind::Keyword(Keyword::Malloc) => {
                self.eat_punct(Punct::LParen)?;
                let e = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                Ok(Expr::Malloc(Box::new(e), pos))
            }
            TokenKind::Keyword(Keyword::Alloca) => {
                self.eat_punct(Punct::LParen)?;
                let e = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                Ok(Expr::Alloca(Box::new(e), pos))
            }
            TokenKind::Ident(name) => {
                if self.eat_if_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_if_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.eat_punct(Punct::RParen)?;
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Ident(name, pos))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                let e = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::new(
                format!("expected an expression, found {other}"),
                pos,
            )),
        }
    }
}

/// Helper: whether a token begins a type (for cast disambiguation).
trait TypeStart {
    fn is_type_start(&self) -> bool;
}

impl TypeStart for TokenKind {
    fn is_type_start(&self) -> bool {
        matches!(
            self,
            TokenKind::Keyword(Keyword::Int)
                | TokenKind::Keyword(Keyword::Char)
                | TokenKind::Keyword(Keyword::Void)
                | TokenKind::Keyword(Keyword::Struct)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Unit {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn empty_unit() {
        assert_eq!(parse_ok("").items.len(), 0);
    }

    #[test]
    fn global_variables() {
        let u = parse_ok("int x; int y = 3; extern int z;");
        assert_eq!(u.items.len(), 3);
        match &u.items[1] {
            Item::Global { decl, init, .. } => {
                assert_eq!(decl.name, "y");
                assert!(matches!(init, Some(Expr::IntLit(3, _))));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &u.items[2] {
            Item::Global { is_extern, .. } => assert!(is_extern),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn struct_definition() {
        let u = parse_ok("struct foo { int i; char c; };");
        match &u.items[0] {
            Item::StructDef { name, fields, .. } => {
                assert_eq!(name, "foo");
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[1].1.name, "c");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_declarator_fields() {
        let u = parse_ok("struct p { int x, y; };");
        match &u.items[0] {
            Item::StructDef { fields, .. } => assert_eq!(fields.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_with_params_and_body() {
        let u = parse_ok("int add(int a, int b) { return a + b; }");
        match &u.items[0] {
            Item::Func {
                name, params, body, ..
            } => {
                assert_eq!(name, "add");
                assert_eq!(params.len(), 2);
                assert_eq!(body.as_ref().unwrap().len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn void_param_list() {
        let u = parse_ok("int f(void) { return 0; }");
        match &u.items[0] {
            Item::Func { params, .. } => assert!(params.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn extern_function_declaration() {
        let u = parse_ok("extern int getchar();");
        match &u.items[0] {
            Item::Func {
                is_extern, body, ..
            } => {
                assert!(is_extern);
                assert!(body.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pointer_declarators() {
        let u = parse_ok("int **p; struct foo *q;");
        match &u.items[0] {
            Item::Global { decl, .. } => assert_eq!(decl.ptr_depth, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_declarators() {
        let u = parse_ok("int a[3][4];");
        match &u.items[0] {
            Item::Global { decl, .. } => assert_eq!(decl.array_dims, vec![3, 4]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_flow_statements() {
        parse_ok(
            r#"
            int main(int n) {
                int i;
                int acc = 0;
                for (i = 0; i < n; i++) {
                    if (i % 2 == 0) acc += i; else acc -= 1;
                }
                while (acc > 100) acc = acc - 1;
                do { acc = acc + 1; } while (acc < 0);
                return acc;
            }
            "#,
        );
    }

    #[test]
    fn break_continue_assert_abort() {
        parse_ok(
            r#"
            void f(int n) {
                while (1) {
                    if (n == 0) break;
                    if (n == 1) continue;
                    assert(n > 1);
                    abort();
                }
            }
            "#,
        );
    }

    #[test]
    fn casts_and_sizeof() {
        let u = parse_ok("void f(struct foo *a) { *((char *)a + sizeof(int)) = 1; }");
        // This is the paper's §2.5 line — must parse as cast + pointer math.
        match &u.items[0] {
            Item::Func { body, .. } => {
                assert!(matches!(body.as_ref().unwrap()[0], Stmt::Assign { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn member_access_chains() {
        parse_ok("struct s { int v; }; int g(struct s *p) { return p->v + (*p).v; }");
    }

    #[test]
    fn malloc_and_null() {
        parse_ok("int f() { int *p; p = malloc(2); if (p == NULL) return 0; return *p; }");
    }

    #[test]
    fn alloca_parses() {
        parse_ok("int f(int n) { int *p; p = alloca(n); return p == NULL; }");
    }

    #[test]
    fn short_circuit_and_ternary() {
        parse_ok("int f(int a, int b) { return a && b || !a ? 1 : 0; }");
    }

    #[test]
    fn precedence_mul_over_add() {
        let u = parse_ok("int x = 1 + 2 * 3;");
        match &u.items[0] {
            Item::Global {
                init: Some(Expr::Binary(BinaryOp::Add, _, rhs, _)),
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary(BinaryOp::Mul, _, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_chains_left_assoc() {
        // (a < b) == c parses as ((a < b) == c)
        let u = parse_ok("int x = 1 < 2 == 1;");
        match &u.items[0] {
            Item::Global {
                init: Some(Expr::Binary(BinaryOp::Eq, lhs, _, _)),
                ..
            } => assert!(matches!(**lhs, Expr::Binary(BinaryOp::Lt, _, _, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_on_missing_semicolon() {
        assert!(parse("int x").is_err());
    }

    #[test]
    fn error_on_bad_array_size() {
        assert!(parse("int a[0];").is_err());
        assert!(parse("int a[x];").is_err());
    }

    #[test]
    fn error_on_extern_with_body() {
        assert!(parse("extern int f() { return 0; }").is_err());
    }

    #[test]
    fn error_on_extern_with_initializer() {
        assert!(parse("extern int x = 3;").is_err());
    }

    #[test]
    fn paper_ac_controller_parses() {
        parse_ok(
            r#"
            int is_room_hot = 0;
            int is_door_closed = 0;
            int ac = 0;
            void ac_controller(int message) {
                if (message == 0) is_room_hot = 1;
                if (message == 1) is_room_hot = 0;
                if (message == 2) { is_door_closed = 0; ac = 0; }
                if (message == 3) {
                    is_door_closed = 1;
                    if (is_room_hot) ac = 1;
                }
                if (is_room_hot && is_door_closed && !ac)
                    abort();
            }
            "#,
        );
    }
}
