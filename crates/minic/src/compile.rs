//! The MiniC → RAM-machine compiler.
//!
//! Lowers the AST to the flat statement array of [`dart_ram::Program`]:
//! locals and parameters become frame slots, globals become fixed offsets
//! from [`dart_ram::GLOBAL_BASE`], control flow becomes conditional gotos
//! whose conditions keep their comparison shape (so the concolic layer can
//! extract branch predicates), `&&`/`||`/`?:` compile to short-circuit
//! branches, and calls to *undefined* functions compile to
//! [`Statement::CallExternal`] — the paper's §3.1 interface definition:
//! "external functions (reported as undefined reference at the time of
//! compilation)".

use crate::ast::{self, AssignOp, BinaryOp, Declarator, Expr, Item, Stmt, TypeAst, UnaryOp};
use crate::diag::CompileError;
use crate::parser::parse;
use crate::token::Pos;
use crate::types::{Field, StructId, StructInfo, Type, TypeTable};
use dart_ram::{
    AllocKind, BinOp, Expr as RExpr, ExtId, External, FuncId, Function, Program, Statement, UnOp,
    GLOBAL_BASE,
};
use std::collections::HashMap;

/// Signature of a compiled (defined) function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Source name.
    pub name: String,
    /// RAM function id.
    pub id: FuncId,
    /// Parameter names and types.
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub ret: Type,
}

/// An `extern` variable — part of the program's external interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternVar {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Offset in the globals region, in words.
    pub offset: u32,
}

/// An external function — part of the program's external interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternFn {
    /// Source name.
    pub name: String,
    /// Declared (or implied `int`) return type.
    pub ret: Type,
    /// RAM external id.
    pub ext: ExtId,
}

/// The result of compiling a MiniC translation unit: the executable RAM
/// program plus everything the DART driver needs — struct layouts for
/// `random_init`, function signatures for toplevel selection, and the
/// extracted external interface (§3.1).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The executable RAM program.
    pub program: Program,
    /// Struct layouts.
    pub types: TypeTable,
    /// Defined functions.
    pub functions: Vec<FnSig>,
    /// `extern` variables (inputs).
    pub extern_vars: Vec<ExternVar>,
    /// External functions (input sources).
    pub extern_fns: Vec<ExternFn>,
    /// Constant global initializers, `(word offset, value)` — the driver
    /// writes these at the start of every run.
    pub global_inits: Vec<(u32, i64)>,
}

impl CompiledProgram {
    /// Looks up a defined function's signature by name.
    pub fn fn_sig(&self, name: &str) -> Option<&FnSig> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Parses and compiles MiniC source.
///
/// # Errors
///
/// Returns the first lexing, parsing, or semantic error.
///
/// # Examples
///
/// ```
/// let compiled = dart_minic::compile("int inc(int x) { return x + 1; }")?;
/// assert_eq!(compiled.functions[0].name, "inc");
/// # Ok::<(), dart_minic::CompileError>(())
/// ```
pub fn compile(src: &str) -> Result<CompiledProgram, CompileError> {
    compile_unit(&parse(src)?)
}

/// Compiles a parsed [`ast::Unit`].
///
/// # Errors
///
/// Returns the first semantic error (unknown names, bad types, recursive
/// struct values, non-constant global initializers, …).
pub fn compile_unit(unit: &ast::Unit) -> Result<CompiledProgram, CompileError> {
    let types = build_type_table(unit)?;
    let mut cc = Compiler::new(types);
    cc.collect_globals(unit)?;
    cc.collect_functions(unit)?;
    cc.compile_bodies(unit)?;
    cc.finish()
}

// ---------------------------------------------------------------------
// Struct layout
// ---------------------------------------------------------------------

/// A struct definition as parsed: name, `(type, declarator)` fields, pos.
type RawStructDef<'a> = (&'a String, &'a Vec<(TypeAst, Declarator)>, Pos);
/// A struct definition with field types resolved.
type ResolvedStructDef = (String, Vec<(String, Type)>, Pos);

fn build_type_table(unit: &ast::Unit) -> Result<TypeTable, CompileError> {
    // Pass 1: reserve ids so self-referential pointers resolve.
    let mut ids: HashMap<String, StructId> = HashMap::new();
    let mut defs: Vec<RawStructDef> = Vec::new();
    for item in &unit.items {
        if let Item::StructDef { name, fields, pos } = item {
            if ids.contains_key(name) {
                return Err(CompileError::new(
                    format!("duplicate struct `{name}`"),
                    *pos,
                ));
            }
            ids.insert(name.clone(), StructId(ids.len() as u32));
            defs.push((name, fields, *pos));
        }
    }

    // Pass 2: resolve field types.
    let mut resolved: Vec<ResolvedStructDef> = Vec::new();
    for (name, fields, pos) in &defs {
        let mut fs = Vec::new();
        for (tast, d) in fields.iter() {
            if !d.array_dims.is_empty() && d.ptr_depth == 0 && *tast == TypeAst::Void {
                return Err(CompileError::new("void field", *pos));
            }
            let ty = resolve_type(tast, d.ptr_depth, &d.array_dims, &ids, *pos)?;
            fs.push((d.name.clone(), ty));
        }
        resolved.push(((*name).clone(), fs, *pos));
    }

    // Pass 3: compute sizes with cycle detection (a struct containing
    // itself by value has infinite size).
    fn size_of(
        ty: &Type,
        resolved: &[ResolvedStructDef],
        visiting: &mut Vec<u32>,
        memo: &mut HashMap<u32, u32>,
    ) -> Result<u32, String> {
        Ok(match ty {
            Type::Int | Type::Char | Type::Ptr(_) => 1,
            Type::Void => return Err("field of type void".into()),
            Type::Array(t, n) => size_of(t, resolved, visiting, memo)? * (*n as u32),
            Type::Struct(StructId(i)) => {
                if let Some(&s) = memo.get(i) {
                    return Ok(s);
                }
                if visiting.contains(i) {
                    return Err(format!(
                        "struct `{}` recursively contains itself by value",
                        resolved[*i as usize].0
                    ));
                }
                visiting.push(*i);
                let mut total = 0;
                for (_, fty) in &resolved[*i as usize].1 {
                    total += size_of(fty, resolved, visiting, memo)?;
                }
                visiting.pop();
                memo.insert(*i, total);
                total
            }
        })
    }

    let mut table = TypeTable::new();
    let mut memo = HashMap::new();
    for (i, (name, fields, pos)) in resolved.iter().enumerate() {
        let mut offset = 0;
        let mut laid = Vec::new();
        for (fname, fty) in fields {
            let sz = size_of(fty, &resolved, &mut Vec::new(), &mut memo)
                .map_err(|m| CompileError::new(m, *pos))?;
            laid.push(Field {
                name: fname.clone(),
                ty: fty.clone(),
                offset,
            });
            offset += sz;
        }
        let _ = size_of(
            &Type::Struct(StructId(i as u32)),
            &resolved,
            &mut Vec::new(),
            &mut memo,
        )
        .map_err(|m| CompileError::new(m, *pos))?;
        table.insert(StructInfo {
            name: name.clone(),
            fields: laid,
            size_words: offset,
        });
    }
    Ok(table)
}

fn resolve_type(
    tast: &TypeAst,
    ptr_depth: u32,
    array_dims: &[usize],
    struct_ids: &HashMap<String, StructId>,
    pos: Pos,
) -> Result<Type, CompileError> {
    let mut ty = match tast {
        TypeAst::Int => Type::Int,
        TypeAst::Char => Type::Char,
        TypeAst::Void => Type::Void,
        TypeAst::Struct(name) => match struct_ids.get(name) {
            Some(id) => Type::Struct(*id),
            None => return Err(CompileError::new(format!("unknown struct `{name}`"), pos)),
        },
    };
    for _ in 0..ptr_depth {
        ty = ty.ptr_to();
    }
    if ty == Type::Void && !array_dims.is_empty() {
        return Err(CompileError::new("array of void", pos));
    }
    for &n in array_dims.iter().rev() {
        ty = Type::Array(Box::new(ty), n);
    }
    Ok(ty)
}

// ---------------------------------------------------------------------
// Compiler state
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct GlobalInfo {
    ty: Type,
    offset: u32,
}

#[derive(Debug, Clone, Copy)]
enum Callee {
    Defined(FuncId),
    External(ExtId),
}

struct Compiler {
    types: TypeTable,
    stmts: Vec<Statement>,
    funcs: Vec<Function>,
    externals: Vec<External>,
    fn_sigs: Vec<FnSig>,
    extern_fns: Vec<ExternFn>,
    extern_vars: Vec<ExternVar>,
    globals: HashMap<String, GlobalInfo>,
    global_words: u32,
    global_names: Vec<(String, u32)>,
    global_inits: Vec<(u32, i64)>,
    fn_by_name: HashMap<String, Callee>,
}

/// Per-function compilation context.
struct FnCtx {
    /// Lexical scopes: name → (slot offset, type).
    scopes: Vec<HashMap<String, (u32, Type)>>,
    next_slot: u32,
    max_slot: u32,
    ret: Type,
    /// Break/continue patch lists per enclosing breakable construct.
    /// `continues` is `None` for `switch` frames (`continue` skips them).
    loops: Vec<(Vec<usize>, Option<Vec<usize>>)>,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<(u32, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn declare(&mut self, name: &str, ty: Type, words: u32) -> u32 {
        let slot = self.next_slot;
        self.next_slot += words;
        self.max_slot = self.max_slot.max(self.next_slot);
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), (slot, ty));
        slot
    }

    fn alloc_temp(&mut self) -> u32 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slot = self.max_slot.max(self.next_slot);
        slot
    }
}

/// Placeholder label patched once the target is known.
const UNPATCHED: usize = usize::MAX;

impl Compiler {
    fn new(types: TypeTable) -> Compiler {
        Compiler {
            types,
            stmts: Vec::new(),
            funcs: Vec::new(),
            externals: Vec::new(),
            fn_sigs: Vec::new(),
            extern_fns: Vec::new(),
            extern_vars: Vec::new(),
            globals: HashMap::new(),
            global_words: 0,
            global_names: Vec::new(),
            global_inits: Vec::new(),
            fn_by_name: HashMap::new(),
        }
    }

    fn collect_globals(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        let ids = {
            // Build the struct-name map once from the unit (cheaper and
            // panic-free compared to probing the table).
            let mut m = HashMap::new();
            for item in &unit.items {
                if let Item::StructDef { name, .. } = item {
                    m.insert(name.clone(), StructId(m.len() as u32));
                }
            }
            m
        };
        for item in &unit.items {
            if let Item::Global {
                ty,
                decl,
                init,
                is_extern,
                pos,
            } = item
            {
                if self.globals.contains_key(&decl.name) {
                    return Err(CompileError::new(
                        format!("duplicate global `{}`", decl.name),
                        *pos,
                    ));
                }
                let rty = resolve_type(ty, decl.ptr_depth, &decl.array_dims, &ids, *pos)?;
                if rty == Type::Void {
                    return Err(CompileError::new("void variable", *pos));
                }
                let words = self.types.size_of(&rty);
                let offset = self.global_words;
                self.global_words += words;
                self.global_names.push((decl.name.clone(), offset));
                self.globals.insert(
                    decl.name.clone(),
                    GlobalInfo {
                        ty: rty.clone(),
                        offset,
                    },
                );
                if *is_extern {
                    self.extern_vars.push(ExternVar {
                        name: decl.name.clone(),
                        ty: rty,
                        offset,
                    });
                } else if let Some(e) = init {
                    let v = const_eval(e, &self.types, &ids)?;
                    self.global_inits.push((offset, v));
                }
            }
        }
        Ok(())
    }

    fn collect_functions(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        let ids = {
            let mut m = HashMap::new();
            for item in &unit.items {
                if let Item::StructDef { name, .. } = item {
                    m.insert(name.clone(), StructId(m.len() as u32));
                }
            }
            m
        };
        // Pass A: definitions become FuncIds.
        for item in &unit.items {
            if let Item::Func {
                ret,
                ret_ptr,
                name,
                params,
                body: Some(_),
                pos,
                ..
            } = item
            {
                if self.fn_by_name.contains_key(name) {
                    return Err(CompileError::new(
                        format!("duplicate function `{name}`"),
                        *pos,
                    ));
                }
                let rty = resolve_type(ret, *ret_ptr, &[], &ids, *pos)?;
                let mut ps = Vec::new();
                for (pt, pd) in params {
                    let mut pty = resolve_type(pt, pd.ptr_depth, &pd.array_dims, &ids, *pos)?;
                    // Array parameters decay to pointers (C semantics).
                    if let Type::Array(elem, _) = pty {
                        pty = Type::Ptr(elem);
                    }
                    if matches!(pty, Type::Struct(_)) || self.types.size_of(&pty) != 1 {
                        return Err(CompileError::new(
                            format!(
                                "parameter `{}` of `{name}` must be scalar or pointer \
                                 (pass structs by pointer)",
                                pd.name
                            ),
                            *pos,
                        ));
                    }
                    ps.push((pd.name.clone(), pty));
                }
                let id = FuncId(self.funcs.len() as u32);
                self.funcs.push(Function {
                    name: name.clone(),
                    entry: 0, // patched when the body is compiled
                    frame_words: 0,
                    num_params: ps.len() as u32,
                });
                self.fn_sigs.push(FnSig {
                    name: name.clone(),
                    id,
                    params: ps,
                    ret: rty,
                });
                self.fn_by_name.insert(name.clone(), Callee::Defined(id));
            }
        }
        // Pass B: declarations without definitions become externals.
        for item in &unit.items {
            if let Item::Func {
                ret,
                ret_ptr,
                name,
                body: None,
                pos,
                ..
            } = item
            {
                if self.fn_by_name.contains_key(name) {
                    continue; // forward declaration of a defined function
                }
                let rty = resolve_type(ret, *ret_ptr, &[], &ids, *pos)?;
                self.register_external(name, rty);
            }
        }
        Ok(())
    }

    fn register_external(&mut self, name: &str, ret: Type) -> ExtId {
        let ext = ExtId(self.externals.len() as u32);
        self.externals.push(External { name: name.into() });
        self.extern_fns.push(ExternFn {
            name: name.into(),
            ret,
            ext,
        });
        self.fn_by_name
            .insert(name.to_string(), Callee::External(ext));
        ext
    }

    fn compile_bodies(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        let ids = {
            let mut m = HashMap::new();
            for item in &unit.items {
                if let Item::StructDef { name, .. } = item {
                    m.insert(name.clone(), StructId(m.len() as u32));
                }
            }
            m
        };
        for item in &unit.items {
            if let Item::Func {
                name,
                body: Some(body),
                pos,
                ..
            } = item
            {
                let Callee::Defined(id) = self.fn_by_name[name] else {
                    unreachable!("defined functions registered in pass A")
                };
                let sig = self.fn_sigs[id.0 as usize].clone();
                let entry = self.stmts.len();
                let mut ctx = FnCtx {
                    scopes: vec![HashMap::new()],
                    next_slot: 0,
                    max_slot: 0,
                    ret: sig.ret.clone(),
                    loops: Vec::new(),
                };
                for (pname, pty) in &sig.params {
                    ctx.declare(pname, pty.clone(), 1);
                }
                for s in body {
                    self.compile_stmt(s, &mut ctx, &ids)?;
                }
                // Fall-off-the-end return.
                let falloff = if ctx.ret == Type::Void {
                    Statement::Ret { value: None }
                } else {
                    Statement::Ret {
                        value: Some(RExpr::Const(0)),
                    }
                };
                self.stmts.push(falloff);
                let f = &mut self.funcs[id.0 as usize];
                f.entry = entry;
                f.frame_words = ctx.max_slot.max(sig.params.len() as u32);
                let _ = pos;
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<CompiledProgram, CompileError> {
        let program = Program {
            stmts: self.stmts,
            funcs: self.funcs,
            externals: self.externals,
            global_words: self.global_words,
            global_names: self.global_names,
        };
        program
            .validate()
            .map_err(|e| CompileError::new(format!("internal: {e}"), Pos::default()))?;
        Ok(CompiledProgram {
            program,
            types: self.types,
            functions: self.fn_sigs,
            extern_vars: self.extern_vars,
            extern_fns: self.extern_fns,
            global_inits: self.global_inits,
        })
    }

    // ----- statement compilation -----

    fn emit(&mut self, s: Statement) -> usize {
        self.stmts.push(s);
        self.stmts.len() - 1
    }

    fn here(&self) -> usize {
        self.stmts.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.stmts[at] {
            Statement::If { target: t, .. } | Statement::Goto(t) => {
                debug_assert_eq!(*t, UNPATCHED, "double patch");
                *t = target;
            }
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn compile_stmt(
        &mut self,
        s: &Stmt,
        ctx: &mut FnCtx,
        ids: &HashMap<String, StructId>,
    ) -> Result<(), CompileError> {
        match s {
            Stmt::Block(stmts) => {
                ctx.scopes.push(HashMap::new());
                let wm = ctx.next_slot;
                for s in stmts {
                    self.compile_stmt(s, ctx, ids)?;
                }
                ctx.scopes.pop();
                ctx.next_slot = wm;
                Ok(())
            }
            Stmt::Decl {
                ty,
                decl,
                init,
                pos,
            } => {
                let rty = resolve_type(ty, decl.ptr_depth, &decl.array_dims, ids, *pos)?;
                if rty == Type::Void {
                    return Err(CompileError::new("void variable", *pos));
                }
                let words = self.types.size_of(&rty);
                let slot = ctx.declare(&decl.name, rty.clone(), words);
                if let Some(e) = init {
                    let wm = ctx.next_slot;
                    let (val, _vt) = self.compile_value(e, ctx, ids)?;
                    self.emit(Statement::Assign {
                        dst: RExpr::frame_slot(slot),
                        src: val,
                    });
                    ctx.next_slot = wm;
                }
                Ok(())
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                let wm = ctx.next_slot;
                let (t_patches, f_patches) = self.compile_branch(cond, ctx, ids)?;
                ctx.next_slot = wm;
                let then_start = self.here();
                for p in t_patches {
                    self.patch(p, then_start);
                }
                self.compile_stmt(then, ctx, ids)?;
                match els {
                    Some(els) => {
                        let skip = self.emit(Statement::Goto(UNPATCHED));
                        let else_start = self.here();
                        for p in f_patches {
                            self.patch(p, else_start);
                        }
                        self.compile_stmt(els, ctx, ids)?;
                        let end = self.here();
                        self.patch(skip, end);
                    }
                    None => {
                        let end = self.here();
                        for p in f_patches {
                            self.patch(p, end);
                        }
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let cond_start = self.here();
                let wm = ctx.next_slot;
                let (t_patches, f_patches) = self.compile_branch(cond, ctx, ids)?;
                ctx.next_slot = wm;
                let body_start = self.here();
                for p in t_patches {
                    self.patch(p, body_start);
                }
                ctx.loops.push((Vec::new(), Some(Vec::new())));
                self.compile_stmt(body, ctx, ids)?;
                self.emit(Statement::Goto(cond_start));
                let end = self.here();
                for p in f_patches {
                    self.patch(p, end);
                }
                let (brs, conts) = ctx.loops.pop().expect("pushed above");
                for p in brs {
                    self.patch(p, end);
                }
                for p in conts.expect("loop frame") {
                    self.patch(p, cond_start);
                }
                Ok(())
            }
            Stmt::DoWhile { body, cond, .. } => {
                let body_start = self.here();
                ctx.loops.push((Vec::new(), Some(Vec::new())));
                self.compile_stmt(body, ctx, ids)?;
                let cond_start = self.here();
                let wm = ctx.next_slot;
                let (t_patches, f_patches) = self.compile_branch(cond, ctx, ids)?;
                ctx.next_slot = wm;
                for p in t_patches {
                    self.patch(p, body_start);
                }
                let end = self.here();
                for p in f_patches {
                    self.patch(p, end);
                }
                let (brs, conts) = ctx.loops.pop().expect("pushed above");
                for p in brs {
                    self.patch(p, end);
                }
                for p in conts.expect("loop frame") {
                    self.patch(p, cond_start);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                ctx.scopes.push(HashMap::new());
                let outer_wm = ctx.next_slot;
                if let Some(init) = init {
                    self.compile_stmt(init, ctx, ids)?;
                }
                let cond_start = self.here();
                let (t_patches, f_patches) = match cond {
                    Some(c) => {
                        let wm = ctx.next_slot;
                        let r = self.compile_branch(c, ctx, ids)?;
                        ctx.next_slot = wm;
                        r
                    }
                    None => (Vec::new(), Vec::new()),
                };
                let body_start = self.here();
                for p in t_patches {
                    self.patch(p, body_start);
                }
                ctx.loops.push((Vec::new(), Some(Vec::new())));
                self.compile_stmt(body, ctx, ids)?;
                let step_start = self.here();
                if let Some(step) = step {
                    self.compile_stmt(step, ctx, ids)?;
                }
                self.emit(Statement::Goto(cond_start));
                let end = self.here();
                for p in f_patches {
                    self.patch(p, end);
                }
                let (brs, conts) = ctx.loops.pop().expect("pushed above");
                for p in brs {
                    self.patch(p, end);
                }
                for p in conts.expect("loop frame") {
                    self.patch(p, step_start);
                }
                ctx.scopes.pop();
                ctx.next_slot = outer_wm;
                Ok(())
            }
            Stmt::Return(v, _) => {
                let wm = ctx.next_slot;
                let value = match v {
                    Some(e) => {
                        let (val, _) = self.compile_value(e, ctx, ids)?;
                        Some(val)
                    }
                    None => {
                        if ctx.ret == Type::Void {
                            None
                        } else {
                            Some(RExpr::Const(0))
                        }
                    }
                };
                self.emit(Statement::Ret { value });
                ctx.next_slot = wm;
                Ok(())
            }
            Stmt::Break(pos) => {
                let jump = self.emit(Statement::Goto(UNPATCHED));
                match ctx.loops.last_mut() {
                    Some((brs, _)) => {
                        brs.push(jump);
                        Ok(())
                    }
                    None => Err(CompileError::new("`break` outside a loop", *pos)),
                }
            }
            Stmt::Continue(pos) => {
                let jump = self.emit(Statement::Goto(UNPATCHED));
                // `continue` binds to the nearest *loop*, skipping switches.
                match ctx
                    .loops
                    .iter_mut()
                    .rev()
                    .find_map(|(_, conts)| conts.as_mut())
                {
                    Some(conts) => {
                        conts.push(jump);
                        Ok(())
                    }
                    None => Err(CompileError::new("`continue` outside a loop", *pos)),
                }
            }
            Stmt::Assert(e, pos) => {
                let wm = ctx.next_slot;
                let (t_patches, f_patches) = self.compile_branch(e, ctx, ids)?;
                ctx.next_slot = wm;
                let fail = self.here();
                for p in f_patches {
                    self.patch(p, fail);
                }
                self.emit(Statement::Abort {
                    reason: format!("assertion failed at {pos}"),
                });
                let ok = self.here();
                for p in t_patches {
                    self.patch(p, ok);
                }
                Ok(())
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                ..
            } => {
                let wm = ctx.next_slot;
                let (val, _ty) = self.compile_value(scrutinee, ctx, ids)?;
                let tmp = ctx.alloc_temp();
                self.emit(Statement::Assign {
                    dst: RExpr::frame_slot(tmp),
                    src: val,
                });
                // Dispatch: one conditional per case (each `tmp == k` is a
                // linear predicate, so the directed search can force every
                // arm), then a jump to default/end.
                let mut case_jumps = Vec::with_capacity(cases.len());
                for (k, _) in cases {
                    case_jumps.push(self.emit(Statement::If {
                        cond: RExpr::binary(BinOp::Eq, RExpr::local(tmp), RExpr::Const(*k)),
                        target: UNPATCHED,
                    }));
                }
                let miss_jump = self.emit(Statement::Goto(UNPATCHED));
                // Bodies in order; C fallthrough between arms; `break`
                // binds to the switch.
                ctx.loops.push((Vec::new(), None));
                ctx.scopes.push(HashMap::new());
                for (jump, (_, body)) in case_jumps.into_iter().zip(cases) {
                    let here = self.here();
                    self.patch(jump, here);
                    for st in body {
                        self.compile_stmt(st, ctx, ids)?;
                    }
                }
                let default_start = self.here();
                if let Some(body) = default {
                    for st in body {
                        self.compile_stmt(st, ctx, ids)?;
                    }
                }
                self.patch(miss_jump, default_start);
                let end = self.here();
                ctx.scopes.pop();
                let (brs, _conts) = ctx.loops.pop().expect("pushed above");
                for p in brs {
                    self.patch(p, end);
                }
                ctx.next_slot = wm;
                Ok(())
            }
            Stmt::Assume(e, _) => {
                let wm = ctx.next_slot;
                let (t_patches, f_patches) = self.compile_branch(e, ctx, ids)?;
                ctx.next_slot = wm;
                let fail = self.here();
                for p in f_patches {
                    self.patch(p, fail);
                }
                self.emit(Statement::Halt);
                let ok = self.here();
                for p in t_patches {
                    self.patch(p, ok);
                }
                Ok(())
            }
            Stmt::Abort(pos) => {
                self.emit(Statement::Abort {
                    reason: format!("abort() at {pos}"),
                });
                Ok(())
            }
            Stmt::Assign { lhs, op, rhs, pos } => {
                let wm = ctx.next_slot;
                let (addr, lty) = self.compile_addr(lhs, ctx, ids)?;
                if let Type::Struct(_) = lty {
                    // Word-wise struct copy.
                    if *op != AssignOp::Assign {
                        return Err(CompileError::new("compound assignment on struct", *pos));
                    }
                    let (raddr, rty) = self.compile_addr(rhs, ctx, ids)?;
                    if rty != lty {
                        return Err(CompileError::new("struct type mismatch", *pos));
                    }
                    // Pin both addresses in temps (they may involve calls).
                    let lt = ctx.alloc_temp();
                    let rt = ctx.alloc_temp();
                    self.emit(Statement::Assign {
                        dst: RExpr::frame_slot(lt),
                        src: addr,
                    });
                    self.emit(Statement::Assign {
                        dst: RExpr::frame_slot(rt),
                        src: raddr,
                    });
                    let words = self.types.size_of(&lty);
                    for w in 0..words {
                        self.emit(Statement::Assign {
                            dst: RExpr::binary(
                                BinOp::Add,
                                RExpr::local(lt),
                                RExpr::Const(w as i64),
                            ),
                            src: RExpr::load(RExpr::binary(
                                BinOp::Add,
                                RExpr::local(rt),
                                RExpr::Const(w as i64),
                            )),
                        });
                    }
                    ctx.next_slot = wm;
                    return Ok(());
                }
                let (rval, rty) = self.compile_value(rhs, ctx, ids)?;
                let src = match op {
                    AssignOp::Assign => rval,
                    AssignOp::AddAssign | AssignOp::SubAssign => {
                        let bin = if *op == AssignOp::AddAssign {
                            BinOp::Add
                        } else {
                            BinOp::Sub
                        };
                        // Pointer-aware: p += n scales by pointee size.
                        let scaled = self.scale_for_ptr(&lty, rval, &rty);
                        RExpr::binary(bin, RExpr::load(addr.clone()), scaled)
                    }
                };
                self.emit(Statement::Assign { dst: addr, src });
                ctx.next_slot = wm;
                Ok(())
            }
            Stmt::ExprStmt(e, _) => {
                let wm = ctx.next_slot;
                // Evaluate for side effects (calls, ++/--).
                let _ = self.compile_value(e, ctx, ids)?;
                ctx.next_slot = wm;
                Ok(())
            }
        }
    }

    /// If `target_ty` is a pointer, scales `val` (an integer offset) by the
    /// pointee size; otherwise returns it unchanged.
    fn scale_for_ptr(&self, target_ty: &Type, val: RExpr, val_ty: &Type) -> RExpr {
        if let Some(pointee) = target_ty.deref_target() {
            if !val_ty.is_ptr() {
                let sz = self.types.size_of(pointee).max(1);
                if sz != 1 {
                    return RExpr::binary(BinOp::Mul, val, RExpr::Const(sz as i64));
                }
            }
        }
        val
    }

    // ----- branch compilation (short-circuit) -----

    /// Compiles `cond` into branch statements. Returns
    /// `(true_patches, false_patches)`: statement indices whose targets must
    /// be patched to the true/false continuation.
    fn compile_branch(
        &mut self,
        cond: &Expr,
        ctx: &mut FnCtx,
        ids: &HashMap<String, StructId>,
    ) -> Result<(Vec<usize>, Vec<usize>), CompileError> {
        match cond {
            Expr::Binary(BinaryOp::LogAnd, a, b, _) => {
                let (a_true, mut a_false) = self.compile_branch(a, ctx, ids)?;
                let b_start = self.here();
                for p in a_true {
                    self.patch(p, b_start);
                }
                let (b_true, b_false) = self.compile_branch(b, ctx, ids)?;
                a_false.extend(b_false);
                Ok((b_true, a_false))
            }
            Expr::Binary(BinaryOp::LogOr, a, b, _) => {
                let (mut a_true, a_false) = self.compile_branch(a, ctx, ids)?;
                let b_start = self.here();
                for p in a_false {
                    self.patch(p, b_start);
                }
                let (b_true, b_false) = self.compile_branch(b, ctx, ids)?;
                a_true.extend(b_true);
                Ok((a_true, b_false))
            }
            Expr::Unary(UnaryOp::Not, inner, _) => {
                let (t, f) = self.compile_branch(inner, ctx, ids)?;
                Ok((f, t))
            }
            _ => {
                // Keep comparisons intact in the If condition so the
                // concolic layer sees the predicate shape.
                let (val, _ty) = self.compile_value(cond, ctx, ids)?;
                let br = self.emit(Statement::If {
                    cond: val,
                    target: UNPATCHED,
                });
                let fall = self.emit(Statement::Goto(UNPATCHED));
                Ok((vec![br], vec![fall]))
            }
        }
    }

    // ----- expression compilation -----

    /// Compiles an lvalue to an address expression and its object type.
    fn compile_addr(
        &mut self,
        e: &Expr,
        ctx: &mut FnCtx,
        ids: &HashMap<String, StructId>,
    ) -> Result<(RExpr, Type), CompileError> {
        match e {
            Expr::Ident(name, pos) => {
                if let Some((slot, ty)) = ctx.lookup(name) {
                    return Ok((RExpr::frame_slot(slot), ty));
                }
                if let Some(g) = self.globals.get(name) {
                    return Ok((RExpr::Const(GLOBAL_BASE + g.offset as i64), g.ty.clone()));
                }
                Err(CompileError::new(
                    format!("unknown variable `{name}`"),
                    *pos,
                ))
            }
            Expr::Unary(UnaryOp::Deref, inner, pos) => {
                let (val, ty) = self.compile_value(inner, ctx, ids)?;
                match ty.deref_target() {
                    Some(t) => Ok((val, t.clone())),
                    None => Err(CompileError::new(
                        format!("cannot dereference `{}`", self.types.display(&ty)),
                        *pos,
                    )),
                }
            }
            Expr::Index(base, idx, pos) => {
                let (bval, bty) = self.compile_value(base, ctx, ids)?;
                let elem = match bty.deref_target() {
                    Some(t) => t.clone(),
                    None => {
                        return Err(CompileError::new(
                            format!("cannot index `{}`", self.types.display(&bty)),
                            *pos,
                        ))
                    }
                };
                let (ival, _ity) = self.compile_value(idx, ctx, ids)?;
                let sz = self.types.size_of(&elem).max(1);
                let offset = if sz == 1 {
                    ival
                } else {
                    RExpr::binary(BinOp::Mul, ival, RExpr::Const(sz as i64))
                };
                Ok((RExpr::binary(BinOp::Add, bval, offset), elem))
            }
            Expr::Member {
                base,
                field,
                arrow,
                pos,
            } => {
                let (baddr, bty) = if *arrow {
                    let (v, t) = self.compile_value(base, ctx, ids)?;
                    let inner = t.deref_target().cloned().ok_or_else(|| {
                        CompileError::new(
                            format!("`->` on non-pointer `{}`", self.types.display(&t)),
                            *pos,
                        )
                    })?;
                    (v, inner)
                } else {
                    self.compile_addr(base, ctx, ids)?
                };
                let Type::Struct(sid) = bty else {
                    return Err(CompileError::new(
                        format!("member access on `{}`", self.types.display(&bty)),
                        *pos,
                    ));
                };
                let info = self.types.info(sid);
                let f = info.field(field).ok_or_else(|| {
                    CompileError::new(
                        format!("struct `{}` has no field `{field}`", info.name),
                        *pos,
                    )
                })?;
                let fty = f.ty.clone();
                let off = f.offset;
                let addr = if off == 0 {
                    baddr
                } else {
                    RExpr::binary(BinOp::Add, baddr, RExpr::Const(off as i64))
                };
                Ok((addr, fty))
            }
            Expr::Cast {
                ty,
                ptr_depth,
                expr,
                pos,
            } => {
                // Cast of an lvalue: same address, reinterpreted type.
                let (addr, _t) = self.compile_addr(expr, ctx, ids)?;
                let rty = resolve_type(ty, *ptr_depth, &[], ids, *pos)?;
                Ok((addr, rty))
            }
            other => Err(CompileError::new(
                "expression is not an lvalue",
                other.pos(),
            )),
        }
    }

    /// Compiles an expression to a (pure) value expression and its type,
    /// emitting statements for any embedded side effects (calls, `++`).
    fn compile_value(
        &mut self,
        e: &Expr,
        ctx: &mut FnCtx,
        ids: &HashMap<String, StructId>,
    ) -> Result<(RExpr, Type), CompileError> {
        match e {
            Expr::IntLit(v, _) => Ok((RExpr::Const(*v), Type::Int)),
            Expr::Null(_) => Ok((RExpr::Const(0), Type::Void.ptr_to())),
            Expr::SizeofType { ty, ptr_depth, pos } => {
                let rty = resolve_type(ty, *ptr_depth, &[], ids, *pos)?;
                Ok((RExpr::Const(self.types.size_of(&rty) as i64), Type::Int))
            }
            Expr::Ident(_, _) | Expr::Member { .. } | Expr::Index(_, _, _) => {
                let (addr, ty) = self.compile_addr(e, ctx, ids)?;
                match ty {
                    // Arrays decay to a pointer to their first element.
                    Type::Array(elem, _) => Ok((addr, Type::Ptr(elem))),
                    Type::Struct(_) => Ok((addr, ty)), // struct value = its address
                    _ => Ok((RExpr::load(addr), ty)),
                }
            }
            Expr::Unary(UnaryOp::Deref, _, _) => {
                let (addr, ty) = self.compile_addr(e, ctx, ids)?;
                match ty {
                    Type::Array(elem, _) => Ok((addr, Type::Ptr(elem))),
                    Type::Struct(_) => Ok((addr, ty)),
                    _ => Ok((RExpr::load(addr), ty)),
                }
            }
            Expr::Unary(UnaryOp::AddrOf, inner, _) => {
                let (addr, ty) = self.compile_addr(inner, ctx, ids)?;
                Ok((addr, ty.ptr_to()))
            }
            Expr::Unary(op, inner, _) => {
                let (val, ty) = self.compile_value(inner, ctx, ids)?;
                let rop = match op {
                    UnaryOp::Neg => UnOp::Neg,
                    UnaryOp::Not => UnOp::Not,
                    UnaryOp::BitNot => UnOp::BitNot,
                    UnaryOp::Deref | UnaryOp::AddrOf => unreachable!("handled above"),
                };
                let out_ty = if *op == UnaryOp::Not { Type::Int } else { ty };
                Ok((RExpr::unary(rop, val), out_ty))
            }
            Expr::Binary(BinaryOp::LogAnd | BinaryOp::LogOr, _, _, _)
            | Expr::Ternary(_, _, _, _) => self.compile_branchy_value(e, ctx, ids),
            Expr::Binary(op, l, r, pos) => {
                let (lv, lt) = self.compile_value(l, ctx, ids)?;
                let (rv, rt) = self.compile_value(r, ctx, ids)?;
                self.compile_binop(*op, lv, lt, rv, rt, *pos)
            }
            Expr::Call { name, args, pos } => self.compile_call(name, args, *pos, ctx, ids),
            Expr::Cast {
                ty,
                ptr_depth,
                expr,
                pos,
            } => {
                let (val, _vt) = self.compile_value(expr, ctx, ids)?;
                let rty = resolve_type(ty, *ptr_depth, &[], ids, *pos)?;
                Ok((val, rty))
            }
            Expr::Malloc(size, _) | Expr::Alloca(size, _) => {
                let kind = if matches!(e, Expr::Malloc(_, _)) {
                    AllocKind::Heap
                } else {
                    AllocKind::Stack
                };
                let (sz, _t) = self.compile_value(size, ctx, ids)?;
                let tmp = ctx.alloc_temp();
                self.emit(Statement::Alloc {
                    dst: RExpr::frame_slot(tmp),
                    size: sz,
                    kind,
                });
                Ok((RExpr::local(tmp), Type::Void.ptr_to()))
            }
            Expr::IncDec {
                target,
                inc,
                postfix,
                ..
            } => {
                let (addr, ty) = self.compile_addr(target, ctx, ids)?;
                let delta: i64 = if ty.is_ptr() {
                    self.types
                        .size_of(ty.deref_target().unwrap_or(&Type::Int))
                        .max(1) as i64
                } else {
                    1
                };
                let step = if *inc { delta } else { -delta };
                if *postfix {
                    let tmp = ctx.alloc_temp();
                    self.emit(Statement::Assign {
                        dst: RExpr::frame_slot(tmp),
                        src: RExpr::load(addr.clone()),
                    });
                    self.emit(Statement::Assign {
                        dst: addr,
                        src: RExpr::binary(BinOp::Add, RExpr::local(tmp), RExpr::Const(step)),
                    });
                    Ok((RExpr::local(tmp), ty))
                } else {
                    self.emit(Statement::Assign {
                        dst: addr.clone(),
                        src: RExpr::binary(
                            BinOp::Add,
                            RExpr::load(addr.clone()),
                            RExpr::Const(step),
                        ),
                    });
                    Ok((RExpr::load(addr), ty))
                }
            }
        }
    }

    fn compile_binop(
        &mut self,
        op: BinaryOp,
        lv: RExpr,
        lt: Type,
        rv: RExpr,
        rt: Type,
        pos: Pos,
    ) -> Result<(RExpr, Type), CompileError> {
        use BinaryOp as B;
        let rop = match op {
            B::Add => BinOp::Add,
            B::Sub => BinOp::Sub,
            B::Mul => BinOp::Mul,
            B::Div => BinOp::Div,
            B::Rem => BinOp::Rem,
            B::Eq => BinOp::Eq,
            B::Ne => BinOp::Ne,
            B::Lt => BinOp::Lt,
            B::Le => BinOp::Le,
            B::Gt => BinOp::Gt,
            B::Ge => BinOp::Ge,
            B::BitAnd => BinOp::BitAnd,
            B::BitOr => BinOp::BitOr,
            B::BitXor => BinOp::BitXor,
            B::Shl => BinOp::Shl,
            B::Shr => BinOp::Shr,
            B::LogAnd | B::LogOr => unreachable!("compiled via branches"),
        };
        match op {
            B::Add | B::Sub => {
                if lt.is_ptr() && rt.is_ptr() {
                    if op == B::Sub {
                        // Pointer difference in elements.
                        let sz = self.types.size_of(lt.deref_target().expect("ptr")).max(1);
                        let diff = RExpr::binary(BinOp::Sub, lv, rv);
                        let v = if sz == 1 {
                            diff
                        } else {
                            RExpr::binary(BinOp::Div, diff, RExpr::Const(sz as i64))
                        };
                        return Ok((v, Type::Int));
                    }
                    return Err(CompileError::new("cannot add two pointers", pos));
                }
                if lt.is_ptr() {
                    let scaled = self.scale_for_ptr(&lt, rv, &rt);
                    return Ok((RExpr::binary(rop, lv, scaled), lt));
                }
                if rt.is_ptr() {
                    if op == B::Sub {
                        return Err(CompileError::new("cannot subtract pointer", pos));
                    }
                    let scaled = self.scale_for_ptr(&rt, lv, &lt);
                    return Ok((RExpr::binary(rop, scaled, rv), rt));
                }
                Ok((RExpr::binary(rop, lv, rv), Type::Int))
            }
            B::Eq | B::Ne | B::Lt | B::Le | B::Gt | B::Ge => {
                Ok((RExpr::binary(rop, lv, rv), Type::Int))
            }
            _ => Ok((RExpr::binary(rop, lv, rv), Type::Int)),
        }
    }

    /// `&&`, `||`, `?:` as *values*: compile via branches into a temp.
    fn compile_branchy_value(
        &mut self,
        e: &Expr,
        ctx: &mut FnCtx,
        ids: &HashMap<String, StructId>,
    ) -> Result<(RExpr, Type), CompileError> {
        let tmp = ctx.alloc_temp();
        match e {
            Expr::Ternary(c, t, f, _) => {
                let (t_patches, f_patches) = self.compile_branch(c, ctx, ids)?;
                let then_start = self.here();
                for p in t_patches {
                    self.patch(p, then_start);
                }
                let (tv, tty) = self.compile_value(t, ctx, ids)?;
                self.emit(Statement::Assign {
                    dst: RExpr::frame_slot(tmp),
                    src: tv,
                });
                let skip = self.emit(Statement::Goto(UNPATCHED));
                let else_start = self.here();
                for p in f_patches {
                    self.patch(p, else_start);
                }
                let (fv, _fty) = self.compile_value(f, ctx, ids)?;
                self.emit(Statement::Assign {
                    dst: RExpr::frame_slot(tmp),
                    src: fv,
                });
                let end = self.here();
                self.patch(skip, end);
                Ok((RExpr::local(tmp), tty))
            }
            _ => {
                let (t_patches, f_patches) = self.compile_branch(e, ctx, ids)?;
                let t_start = self.here();
                for p in t_patches {
                    self.patch(p, t_start);
                }
                self.emit(Statement::Assign {
                    dst: RExpr::frame_slot(tmp),
                    src: RExpr::Const(1),
                });
                let skip = self.emit(Statement::Goto(UNPATCHED));
                let f_start = self.here();
                for p in f_patches {
                    self.patch(p, f_start);
                }
                self.emit(Statement::Assign {
                    dst: RExpr::frame_slot(tmp),
                    src: RExpr::Const(0),
                });
                let end = self.here();
                self.patch(skip, end);
                Ok((RExpr::local(tmp), Type::Int))
            }
        }
    }

    fn compile_call(
        &mut self,
        name: &str,
        args: &[Expr],
        pos: Pos,
        ctx: &mut FnCtx,
        ids: &HashMap<String, StructId>,
    ) -> Result<(RExpr, Type), CompileError> {
        // Unknown functions become externals returning int (§3.1:
        // "undefined reference" = external interface).
        let callee = match self.fn_by_name.get(name) {
            Some(c) => *c,
            None => Callee::External(self.register_external(name, Type::Int)),
        };
        match callee {
            Callee::Defined(id) => {
                let sig = self.fn_sigs[id.0 as usize].clone();
                if args.len() != sig.params.len() {
                    return Err(CompileError::new(
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            sig.params.len(),
                            args.len()
                        ),
                        pos,
                    ));
                }
                let mut avals = Vec::with_capacity(args.len());
                for a in args {
                    let (v, _t) = self.compile_value(a, ctx, ids)?;
                    avals.push(v);
                }
                let tmp = ctx.alloc_temp();
                self.emit(Statement::Call {
                    func: id,
                    args: avals,
                    dst: Some(RExpr::frame_slot(tmp)),
                });
                Ok((RExpr::local(tmp), sig.ret))
            }
            Callee::External(ext) => {
                // Arguments are evaluated (C semantics: faults inside
                // arguments still happen) and then discarded — external
                // functions are environment-controlled black boxes.
                for a in args {
                    let (v, _t) = self.compile_value(a, ctx, ids)?;
                    let sink = ctx.alloc_temp();
                    self.emit(Statement::Assign {
                        dst: RExpr::frame_slot(sink),
                        src: v,
                    });
                }
                let ret = self
                    .extern_fns
                    .iter()
                    .find(|f| f.ext == ext)
                    .map(|f| f.ret.clone())
                    .unwrap_or(Type::Int);
                let tmp = ctx.alloc_temp();
                self.emit(Statement::CallExternal {
                    ext,
                    dst: Some(RExpr::frame_slot(tmp)),
                });
                Ok((RExpr::local(tmp), ret))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Constant evaluation for global initializers
// ---------------------------------------------------------------------

fn const_eval(
    e: &Expr,
    types: &TypeTable,
    ids: &HashMap<String, StructId>,
) -> Result<i64, CompileError> {
    match e {
        Expr::IntLit(v, _) => Ok(*v),
        Expr::Null(_) => Ok(0),
        Expr::SizeofType { ty, ptr_depth, pos } => {
            let rty = resolve_type(ty, *ptr_depth, &[], ids, *pos)?;
            Ok(types.size_of(&rty) as i64)
        }
        Expr::Unary(op, inner, pos) => {
            let v = const_eval(inner, types, ids)?;
            Ok(match op {
                UnaryOp::Neg => v.wrapping_neg(),
                UnaryOp::Not => i64::from(v == 0),
                UnaryOp::BitNot => !v,
                _ => {
                    return Err(CompileError::new(
                        "global initializer must be constant",
                        *pos,
                    ))
                }
            })
        }
        Expr::Binary(op, l, r, pos) => {
            let a = const_eval(l, types, ids)?;
            let b = const_eval(r, types, ids)?;
            let rop = match op {
                BinaryOp::Add => BinOp::Add,
                BinaryOp::Sub => BinOp::Sub,
                BinaryOp::Mul => BinOp::Mul,
                BinaryOp::Div => BinOp::Div,
                BinaryOp::Rem => BinOp::Rem,
                BinaryOp::Shl => BinOp::Shl,
                BinaryOp::Shr => BinOp::Shr,
                BinaryOp::BitAnd => BinOp::BitAnd,
                BinaryOp::BitOr => BinOp::BitOr,
                BinaryOp::BitXor => BinOp::BitXor,
                BinaryOp::Eq => BinOp::Eq,
                BinaryOp::Ne => BinOp::Ne,
                BinaryOp::Lt => BinOp::Lt,
                BinaryOp::Le => BinOp::Le,
                BinaryOp::Gt => BinOp::Gt,
                BinaryOp::Ge => BinOp::Ge,
                BinaryOp::LogAnd => {
                    return Ok(i64::from(a != 0 && b != 0));
                }
                BinaryOp::LogOr => {
                    return Ok(i64::from(a != 0 || b != 0));
                }
            };
            dart_ram::apply_binop(rop, a, b)
                .map_err(|f| CompileError::new(format!("in constant: {f}"), *pos))
        }
        other => Err(CompileError::new(
            "global initializer must be constant",
            other.pos(),
        )),
    }
}
