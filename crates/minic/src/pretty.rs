//! Pretty-printer: AST → MiniC source.
//!
//! Emits parseable source whose AST round-trips exactly
//! (`parse(print(u)) == u` up to source positions). Useful for dumping
//! generated workloads, golden tests, and fuzzing the parser.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole translation unit.
pub fn print_unit(unit: &Unit) -> String {
    let mut out = String::new();
    for item in &unit.items {
        print_item(&mut out, item);
        out.push('\n');
    }
    out
}

fn type_prefix(ty: &TypeAst) -> String {
    match ty {
        TypeAst::Int => "int".into(),
        TypeAst::Char => "char".into(),
        TypeAst::Void => "void".into(),
        TypeAst::Struct(name) => format!("struct {name}"),
    }
}

fn declarator(d: &Declarator) -> String {
    let mut s = String::new();
    for _ in 0..d.ptr_depth {
        s.push('*');
    }
    s.push_str(&d.name);
    for dim in &d.array_dims {
        let _ = write!(s, "[{dim}]");
    }
    s
}

fn print_item(out: &mut String, item: &Item) {
    match item {
        Item::StructDef { name, fields, .. } => {
            let _ = writeln!(out, "struct {name} {{");
            for (ty, d) in fields {
                let _ = writeln!(out, "    {} {};", type_prefix(ty), declarator(d));
            }
            let _ = writeln!(out, "}};");
        }
        Item::Global {
            ty,
            decl,
            init,
            is_extern,
            ..
        } => {
            if *is_extern {
                out.push_str("extern ");
            }
            let _ = write!(out, "{} {}", type_prefix(ty), declarator(decl));
            if let Some(e) = init {
                let _ = write!(out, " = {}", expr(e));
            }
            out.push_str(";\n");
        }
        Item::Func {
            ret,
            ret_ptr,
            name,
            params,
            body,
            is_extern,
            ..
        } => {
            if *is_extern {
                out.push_str("extern ");
            }
            let stars = "*".repeat(*ret_ptr as usize);
            let ps: Vec<String> = params
                .iter()
                .map(|(t, d)| format!("{} {}", type_prefix(t), declarator(d)))
                .collect();
            let _ = write!(out, "{} {stars}{name}({})", type_prefix(ret), ps.join(", "));
            match body {
                None => out.push_str(";\n"),
                Some(stmts) => {
                    out.push_str(" {\n");
                    for s in stmts {
                        stmt(out, s, 1);
                    }
                    out.push_str("}\n");
                }
            }
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

/// Prints `s` as the contents of an (already-opened) braced body,
/// unwrapping one `Block` layer so reparsing reaches a fixpoint.
fn braced_contents(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Block(stmts) => {
            for inner in stmts {
                stmt(out, inner, level);
            }
        }
        other => stmt(out, other, level),
    }
}

fn stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Block(stmts) => {
            out.push_str("{\n");
            for inner in stmts {
                stmt(out, inner, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Decl { ty, decl, init, .. } => {
            let _ = write!(out, "{} {}", type_prefix(ty), declarator(decl));
            if let Some(e) = init {
                let _ = write!(out, " = {}", expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::If {
            cond, then, els, ..
        } => {
            // Bodies are always braced: avoids the dangling-else ambiguity.
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            braced_contents(out, then, level + 1);
            indent(out, level);
            match els {
                None => out.push_str("}\n"),
                Some(e) => {
                    out.push_str("} else {\n");
                    braced_contents(out, e, level + 1);
                    indent(out, level);
                    out.push_str("}\n");
                }
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            braced_contents(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::DoWhile { body, cond, .. } => {
            out.push_str("do {\n");
            braced_contents(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}} while ({});", expr(cond));
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            out.push_str("for (");
            if let Some(i) = init {
                inline_simple(out, i);
            }
            out.push_str("; ");
            if let Some(c) = cond {
                out.push_str(&expr(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                inline_simple(out, st);
            }
            out.push_str(") {\n");
            braced_contents(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return(None, _) => out.push_str("return;\n"),
        Stmt::Return(Some(e), _) => {
            let _ = writeln!(out, "return {};", expr(e));
        }
        Stmt::Break(_) => out.push_str("break;\n"),
        Stmt::Continue(_) => out.push_str("continue;\n"),
        Stmt::Assert(e, _) => {
            let _ = writeln!(out, "assert({});", expr(e));
        }
        Stmt::Assume(e, _) => {
            let _ = writeln!(out, "assume({});", expr(e));
        }
        Stmt::Abort(_) => out.push_str("abort();\n"),
        Stmt::Switch {
            scrutinee,
            cases,
            default,
            ..
        } => {
            let _ = writeln!(out, "switch ({}) {{", expr(scrutinee));
            for (k, body) in cases {
                indent(out, level);
                if *k < 0 {
                    let _ = writeln!(out, "case -{}:", -k);
                } else {
                    let _ = writeln!(out, "case {k}:");
                }
                for st in body {
                    stmt(out, st, level + 1);
                }
            }
            if let Some(body) = default {
                indent(out, level);
                out.push_str("default:\n");
                for st in body {
                    stmt(out, st, level + 1);
                }
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Assign { .. } | Stmt::ExprStmt(..) => {
            inline_simple(out, s);
            out.push_str(";\n");
        }
    }
}

/// Renders a `for`-header-style statement with no indentation/terminator.
fn inline_simple(out: &mut String, s: &Stmt) {
    match s {
        Stmt::Decl { ty, decl, init, .. } => {
            let _ = write!(out, "{} {}", type_prefix(ty), declarator(decl));
            if let Some(e) = init {
                let _ = write!(out, " = {}", expr(e));
            }
        }
        Stmt::Assign { lhs, op, rhs, .. } => {
            let op = match op {
                AssignOp::Assign => "=",
                AssignOp::AddAssign => "+=",
                AssignOp::SubAssign => "-=",
            };
            let _ = write!(out, "{} {op} {}", expr(lhs), expr(rhs));
        }
        Stmt::ExprStmt(e, _) => out.push_str(&expr(e)),
        other => {
            debug_assert!(false, "not a simple statement: {other:?}");
        }
    }
}

/// Renders an expression, fully parenthesized (round-trips regardless of
/// precedence).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v, _) => {
            if *v < 0 {
                // Negative literals re-lex as unary minus; parenthesize.
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::Null(_) => "NULL".into(),
        Expr::Ident(name, _) => name.clone(),
        Expr::Unary(op, inner, _) => {
            let sym = match op {
                UnaryOp::Neg => "-",
                UnaryOp::Not => "!",
                UnaryOp::BitNot => "~",
                UnaryOp::Deref => "*",
                UnaryOp::AddrOf => "&",
            };
            format!("{sym}({})", expr(inner))
        }
        Expr::Binary(op, l, r, _) => {
            let sym = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Rem => "%",
                BinaryOp::Eq => "==",
                BinaryOp::Ne => "!=",
                BinaryOp::Lt => "<",
                BinaryOp::Le => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::Ge => ">=",
                BinaryOp::LogAnd => "&&",
                BinaryOp::LogOr => "||",
                BinaryOp::BitAnd => "&",
                BinaryOp::BitOr => "|",
                BinaryOp::BitXor => "^",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
            };
            format!("({} {sym} {})", expr(l), expr(r))
        }
        Expr::Ternary(c, t, f, _) => {
            format!("({} ? {} : {})", expr(c), expr(t), expr(f))
        }
        Expr::Call { name, args, .. } => {
            let list: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", list.join(", "))
        }
        Expr::Index(base, idx, _) => {
            format!("{}[{}]", paren_postfix_base(base), expr(idx))
        }
        Expr::Member {
            base, field, arrow, ..
        } => {
            let sep = if *arrow { "->" } else { "." };
            format!("{}{sep}{field}", paren_postfix_base(base))
        }
        Expr::Cast {
            ty,
            ptr_depth,
            expr: inner,
            ..
        } => {
            let stars = "*".repeat(*ptr_depth as usize);
            format!("({}{stars})({})", type_prefix(ty), expr(inner))
        }
        Expr::SizeofType { ty, ptr_depth, .. } => {
            let stars = "*".repeat(*ptr_depth as usize);
            format!("sizeof({}{stars})", type_prefix(ty))
        }
        Expr::Malloc(size, _) => format!("malloc({})", expr(size)),
        Expr::Alloca(size, _) => format!("alloca({})", expr(size)),
        Expr::IncDec {
            target,
            inc,
            postfix,
            ..
        } => {
            let sym = if *inc { "++" } else { "--" };
            if *postfix {
                format!("{}{sym}", paren_postfix_base(target))
            } else {
                format!("{sym}{}", expr(target))
            }
        }
    }
}

/// A postfix operator's base must itself be a postfix/primary form;
/// parenthesize anything else.
fn paren_postfix_base(e: &Expr) -> String {
    match e {
        Expr::Ident(..) | Expr::Member { .. } | Expr::Index(..) | Expr::Call { .. } => expr(e),
        other => format!("({})", expr(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Checks the printer fixpoint: `print(parse(print(u))) == print(u)`.
    /// (The printer braces all bodies, so a raw AST comparison would differ
    /// by `Block` wrappers; the printed form is the canonical one.)
    fn roundtrips(src: &str) {
        let first = parse(src).unwrap_or_else(|e| panic!("parse 1: {e}\n{src}"));
        let printed = print_unit(&first);
        let second = parse(&printed).unwrap_or_else(|e| panic!("parse 2: {e}\n{printed}"));
        assert_eq!(printed, print_unit(&second), "not a fixpoint:\n{printed}");
    }

    #[test]
    fn roundtrip_basics() {
        roundtrips("int x = 3; extern int y;");
        roundtrips("struct s { int a; char *b; int c[4]; };");
        roundtrips("extern int read();");
        roundtrips("int *alias(int **p) { return *p; }");
    }

    #[test]
    fn roundtrip_statements() {
        roundtrips(
            r#"
            int f(int n) {
                int acc = 0;
                int i;
                for (i = 0; i < n; i++) {
                    if (i % 2 == 0) acc += i; else acc -= 1;
                    while (acc > 100) acc = acc - 50;
                    do { acc++; } while (acc < 0);
                    if (i == 9) break;
                    if (i == 3) continue;
                }
                assert(acc >= 0);
                assume(n < 1000);
                return acc;
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_expressions() {
        roundtrips(
            r#"
            struct foo { int i; char c; };
            int g(struct foo *a, int x, int y) {
                int v = x > 0 ? x : -y;
                int w = (x & y) | (x ^ 3) << 2 >> 1;
                *((char *)a + sizeof(int)) = 1;
                a->c = (*a).i + a->c;
                int *p = (int *) malloc(sizeof(struct foo));
                int *q = (int *) alloca(4);
                return v + w + !x + ~y + p[0] + q[0] + g(a, --x, y++);
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_paper_fig6() {
        roundtrips(
            r#"
            int is_room_hot = 0;
            int is_door_closed = 0;
            int ac = 0;
            void ac_controller(int message) {
                if (message == 0) is_room_hot = 1;
                if (message == 1) is_room_hot = 0;
                if (message == 2) { is_door_closed = 0; ac = 0; }
                if (message == 3) {
                    is_door_closed = 1;
                    if (is_room_hot) ac = 1;
                }
                if (is_room_hot && is_door_closed && !ac) abort();
            }
            "#,
        );
    }

    #[test]
    fn printed_source_compiles_and_runs_identically() {
        use dart_ram::{Machine, MachineConfig, StepOutcome, ZeroEnv};
        let src = r#"
            int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
        "#;
        let printed = print_unit(&parse(src).unwrap());
        let original = crate::compile(src).unwrap();
        let reprinted = crate::compile(&printed).unwrap();
        for program in [&original, &reprinted] {
            let id = program.program.func_by_name("fib").unwrap();
            let mut m = Machine::new(&program.program, MachineConfig::default());
            m.call(id, &[10]).unwrap();
            assert_eq!(
                m.run(&mut ZeroEnv),
                StepOutcome::Finished { value: Some(55) }
            );
        }
    }

    #[test]
    fn negative_literal_is_reparseable() {
        let u = parse("int f() { return 0 - 5; }").unwrap();
        let printed = print_unit(&u);
        assert!(parse(&printed).is_ok());
    }
}
