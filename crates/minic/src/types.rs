//! Semantic types and struct layout.
//!
//! MiniC memory is word-addressed: every scalar (including `char`) occupies
//! one 64-bit word and `sizeof` counts words (DESIGN.md documents this
//! substitution; the paper's §2.5 pointer-cast idiom still behaves
//! identically because offsets are preserved).

use std::collections::HashMap;
use std::fmt;

/// Identifies a struct in the [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructId(pub u32);

/// A resolved MiniC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed word.
    Int,
    /// Character (one word; see DESIGN.md).
    Char,
    /// No value (function returns only).
    Void,
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// A named struct.
    Struct(StructId),
}

impl Type {
    /// Pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether this is any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Whether this is an arithmetic scalar (`int`/`char`).
    pub fn is_scalar_arith(&self) -> bool {
        matches!(self, Type::Int | Type::Char)
    }

    /// The pointee of a pointer, or the element of an array (for decay).
    pub fn deref_target(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }
}

/// A struct field with its layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Offset from the struct base, in words.
    pub offset: u32,
}

/// A struct's definition and layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructInfo {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Total size in words.
    pub size_words: u32,
}

impl StructInfo {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// All struct definitions of a program.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    structs: Vec<StructInfo>,
    by_name: HashMap<String, StructId>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    /// Registers a struct (fields must already be laid out). Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered (the compiler checks for
    /// duplicates before building the table).
    pub fn insert(&mut self, info: StructInfo) -> StructId {
        assert!(
            !self.by_name.contains_key(&info.name),
            "duplicate struct {}",
            info.name
        );
        let id = StructId(self.structs.len() as u32);
        self.by_name.insert(info.name.clone(), id);
        self.structs.push(info);
        id
    }

    /// Looks up a struct id by tag.
    pub fn id_of(&self, name: &str) -> Option<StructId> {
        self.by_name.get(name).copied()
    }

    /// The definition of `id`.
    ///
    /// # Panics
    ///
    /// Panics on an id from a different table.
    pub fn info(&self, id: StructId) -> &StructInfo {
        &self.structs[id.0 as usize]
    }

    /// Size of a type in words.
    ///
    /// `void` has size 0 (the compiler rejects `void` objects separately).
    pub fn size_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Int | Type::Char | Type::Ptr(_) => 1,
            Type::Void => 0,
            Type::Array(t, n) => self.size_of(t) * (*n as u32),
            Type::Struct(id) => self.info(*id).size_words,
        }
    }

    /// Formats a type for diagnostics.
    pub fn display(&self, ty: &Type) -> String {
        match ty {
            Type::Int => "int".into(),
            Type::Char => "char".into(),
            Type::Void => "void".into(),
            Type::Ptr(t) => format!("{}*", self.display(t)),
            Type::Array(t, n) => format!("{}[{n}]", self.display(t)),
            Type::Struct(id) => format!("struct {}", self.info(*id).name),
        }
    }
}

impl fmt::Display for StructInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "struct {} ({} words)", self.name, self.size_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_foo() -> (TypeTable, StructId) {
        // struct foo { int i; char c; } — the paper's §2.5 struct.
        let mut t = TypeTable::new();
        let id = t.insert(StructInfo {
            name: "foo".into(),
            fields: vec![
                Field {
                    name: "i".into(),
                    ty: Type::Int,
                    offset: 0,
                },
                Field {
                    name: "c".into(),
                    ty: Type::Char,
                    offset: 1,
                },
            ],
            size_words: 2,
        });
        (t, id)
    }

    #[test]
    fn scalar_sizes() {
        let t = TypeTable::new();
        assert_eq!(t.size_of(&Type::Int), 1);
        assert_eq!(t.size_of(&Type::Char), 1);
        assert_eq!(t.size_of(&Type::Int.ptr_to()), 1);
        assert_eq!(t.size_of(&Type::Void), 0);
    }

    #[test]
    fn array_and_struct_sizes() {
        let (t, id) = table_with_foo();
        assert_eq!(t.size_of(&Type::Struct(id)), 2);
        assert_eq!(t.size_of(&Type::Array(Box::new(Type::Struct(id)), 3)), 6);
        assert_eq!(
            t.size_of(&Type::Array(
                Box::new(Type::Array(Box::new(Type::Int), 4)),
                2
            )),
            8
        );
    }

    #[test]
    fn field_lookup_and_offsets() {
        let (t, id) = table_with_foo();
        let info = t.info(id);
        assert_eq!(info.field("i").unwrap().offset, 0);
        assert_eq!(info.field("c").unwrap().offset, 1);
        assert!(info.field("zzz").is_none());
    }

    #[test]
    fn name_lookup() {
        let (t, id) = table_with_foo();
        assert_eq!(t.id_of("foo"), Some(id));
        assert_eq!(t.id_of("bar"), None);
    }

    #[test]
    fn deref_targets() {
        let p = Type::Int.ptr_to();
        assert_eq!(p.deref_target(), Some(&Type::Int));
        let a = Type::Array(Box::new(Type::Char), 4);
        assert_eq!(a.deref_target(), Some(&Type::Char));
        assert_eq!(Type::Int.deref_target(), None);
    }

    #[test]
    fn display_types() {
        let (t, id) = table_with_foo();
        assert_eq!(t.display(&Type::Struct(id).ptr_to()), "struct foo*");
        assert_eq!(
            t.display(&Type::Array(Box::new(Type::Int.ptr_to()), 3)),
            "int*[3]"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate struct")]
    fn duplicate_struct_panics() {
        let (mut t, _) = table_with_foo();
        t.insert(StructInfo {
            name: "foo".into(),
            fields: vec![],
            size_words: 0,
        });
    }
}
