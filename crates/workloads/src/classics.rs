//! Classic unit-testing benchmark programs, MiniC editions.
//!
//! Not from the DART paper itself, but from the testing literature it
//! spawned — small programs whose bugs sit behind input filters exactly
//! like the paper's §4.1 observation: "most applications contain
//! input-filtering code … only inputs that satisfy these filtering tests
//! are then passed to the core application".

/// Triangle classification (Myers' classic, the paper's reference \[27\]):
/// the isosceles case `a == c` is forgotten. The checker enforces the
/// validity precondition with `assume` and the specification with
/// `assert`.
pub const TRIANGLE_BUGGY: &str = r#"
/* 1 = equilateral, 2 = isosceles, 3 = scalene */
int classify(int a, int b, int c) {
    if (a == b && b == c) return 1;
    if (a == b || b == c) return 2;   /* BUG: forgets a == c */
    return 3;
}

void check(int a, int b, int c) {
    assume(a > 0 && b > 0 && c > 0);
    assume(a + b > c && b + c > a && a + c > b);
    int kind = classify(a, b, c);
    if (a == b && b == c) assert(kind == 1);
    if (a != b && b != c && a != c) assert(kind == 3);
    if (a == c && a != b) assert(kind == 2);
}
"#;

/// The fixed classifier: DART verifies it (directed search terminates
/// with no assertion violated).
pub const TRIANGLE_FIXED: &str = r#"
int classify(int a, int b, int c) {
    if (a == b && b == c) return 1;
    if (a == b || b == c || a == c) return 2;
    return 3;
}

void check(int a, int b, int c) {
    assume(a > 0 && b > 0 && c > 0);
    assume(a + b > c && b + c > a && a + c > b);
    int kind = classify(a, b, c);
    if (a == b && b == c) assert(kind == 1);
    if (a != b && b != c && a != c) assert(kind == 3);
    if (a == c && a != b) assert(kind == 2);
}
"#;

/// A TCAS-flavored altitude-separation advisory: deeply nested filtering
/// logic with a corner case (own aircraft exactly at the threshold while
/// climbing) that issues contradictory advisories.
pub const TCAS_LITE: &str = r#"
int UP = 1;
int DOWN = 2;

int advisory(int own_alt, int other_alt, int own_rate) {
    int sep = own_alt - other_alt;
    if (sep < 0) sep = -sep;
    if (sep >= 600) return 0;            /* no threat */

    int climb = own_rate > 0;
    if (own_alt < other_alt) {
        if (climb && sep < 300) return DOWN;
        return DOWN;
    }
    if (own_alt > other_alt) {
        if (!climb && sep < 300) return UP;
        return UP;
    }
    /* co-altitude corner: BUG issues UP regardless of rate */
    return UP;
}

void check(int own_alt, int other_alt, int own_rate) {
    assume(own_alt > 0 && own_alt < 50000);
    assume(other_alt > 0 && other_alt < 50000);
    int a = advisory(own_alt, other_alt, own_rate);
    /* spec: a descending own-aircraft at co-altitude must not be told UP */
    if (own_alt == other_alt && own_rate < 0)
        assert(a != UP);
}
"#;

/// A bounded stack driven one operation per depth iteration (`op`:
/// 1 = push, 2 = pop). The pop handler forgets the emptiness check on one
/// path, underflowing the index — a depth-2 bug sequence (push is not
/// needed: pop-on-empty with the magic flavor), mirroring the
/// AC-controller's stateful-depth structure.
pub const BOUNDED_STACK: &str = r#"
int data[8];
int top = 0;

void operate(int op, int value) {
    if (op == 1) {
        if (top >= 8) return;         /* full: ignore */
        data[top] = value;
        top = top + 1;
    }
    if (op == 2) {
        if (value == 777) {
            /* "fast path" BUG: no emptiness check */
            top = top - 1;
            data[top] = 0;            /* crashes: data[-1] */
            return;
        }
        if (top == 0) return;         /* empty: ignore */
        top = top - 1;
    }
}
"#;

/// A five-state protocol automaton: only the exact input word
/// `7, 3, 9, 1, 5` (one symbol per depth iteration) reaches the failure
/// state. Random testing needs ~2^160 attempts; the directed search walks
/// the automaton one flipped branch at a time.
pub const LOCK_FSM: &str = r#"
int state = 0;

void step(int symbol) {
    if (state == 0) { if (symbol == 7) state = 1; else state = 0; }
    else if (state == 1) { if (symbol == 3) state = 2; else state = 0; }
    else if (state == 2) { if (symbol == 9) state = 3; else state = 0; }
    else if (state == 3) { if (symbol == 1) state = 4; else state = 0; }
    else if (state == 4) {
        if (symbol == 5) abort();     /* the vault opens */
        state = 0;
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use dart_minic::compile;

    #[test]
    fn all_classics_compile() {
        for (name, src) in [
            ("TRIANGLE_BUGGY", TRIANGLE_BUGGY),
            ("TRIANGLE_FIXED", TRIANGLE_FIXED),
            ("TCAS_LITE", TCAS_LITE),
            ("BOUNDED_STACK", BOUNDED_STACK),
            ("LOCK_FSM", LOCK_FSM),
        ] {
            compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
