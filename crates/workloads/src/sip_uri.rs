//! A SIP-URI-flavored parser: a realistic, switch-based input-filtering
//! pipeline of the kind the paper's §4.1 discussion describes — "most
//! applications contain input-filtering code that performs basic sanity
//! checks on the inputs and discards the bad or irrelevant ones. Only
//! inputs that satisfy these filtering tests are then passed to the core
//! application."
//!
//! The URI arrives pre-tokenized as a struct of integers (one field per
//! syntactic component — our word-level stand-in for oSIP's character
//! parsing). The parser validates scheme, user, host and port through a
//! switch-driven state machine; the *core application* behind the filter
//! contains a planted bug: registering a `sips:` (secure) URI with
//! transport parameter `udp` and the loopback host dereferences an
//! uninitialized route entry. Reaching it requires passing every filter —
//! hopeless for random testing, a few hundred runs for DART.

/// MiniC source. Toplevel: `register(scheme, user, host, port, transport)`.
pub const SIP_URI_PARSER: &str = r#"
/* token codes */
int SCHEME_SIP = 1;
int SCHEME_SIPS = 2;
int TRANSPORT_UDP = 1;
int TRANSPORT_TCP = 2;
int TRANSPORT_TLS = 3;
int HOST_LOOPBACK = 127;

struct binding { int host; int port; int secure; };
struct binding table[4];
int n_bound = 0;

/* the "core application": record a registration */
int bind_uri(int host, int port, int secure, int transport) {
    if (n_bound >= 4) return -1;
    table[n_bound].host = host;
    table[n_bound].port = port;
    table[n_bound].secure = secure;
    n_bound = n_bound + 1;

    /* planted bug: secure URI over UDP to loopback walks one entry past
       the bindings recorded so far (stale index arithmetic) */
    if (secure == 1) {
        if (transport == 1) {
            if (host == 127) {
                struct binding *stale = &table[n_bound + 3];
                return stale->port;   /* out of bounds when n_bound > 0 */
            }
        }
    }
    return n_bound;
}

/* the input filter: scheme/user/host/port sanity checks */
int register_uri(int scheme, int user, int host, int port, int transport) {
    int secure = 0;

    switch (scheme) {
        case 1:                /* sip:  */
            secure = 0;
            break;
        case 2:                /* sips: */
            secure = 1;
            break;
        default:
            return -400;       /* unsupported scheme */
    }

    if (user <= 0) return -401;          /* user part required */
    if (user > 9999) return -402;        /* user id out of range */

    if (host <= 0 || host > 255) return -403;  /* host octet */

    if (port != 0) {                     /* 0 = default port */
        if (port < 1024) return -404;    /* privileged ports rejected */
        if (port > 65535) return -405;
    }

    switch (transport) {
        case 1:
            break;                       /* udp */
        case 2:
            break;                       /* tcp */
        case 3:
            if (secure == 0) return -406; /* tls requires sips: */
            break;
        default:
            return -407;
    }

    int effective = port;
    if (effective == 0) {
        if (secure == 1) effective = 5061; else effective = 5060;
    }
    return bind_uri(host, effective, secure, transport);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use dart_minic::compile;
    use dart_ram::{Machine, MachineConfig, StepOutcome, ZeroEnv};

    fn call(args: &[i64]) -> StepOutcome {
        let compiled = compile(SIP_URI_PARSER).unwrap();
        let id = compiled.program.func_by_name("register_uri").unwrap();
        let mut m = Machine::new(&compiled.program, MachineConfig::default());
        for &(off, v) in &compiled.global_inits {
            m.mem_mut()
                .store(dart_ram::GLOBAL_BASE + off as i64, v)
                .unwrap();
        }
        m.call(id, args).unwrap();
        m.run(&mut ZeroEnv)
    }

    #[test]
    fn valid_registrations_succeed() {
        // sip:100@10:5070;tcp
        assert_eq!(
            call(&[1, 100, 10, 5070, 2]),
            StepOutcome::Finished { value: Some(1) }
        );
        // sips:42@200 (default port, tls)
        assert_eq!(
            call(&[2, 42, 200, 0, 3]),
            StepOutcome::Finished { value: Some(1) }
        );
    }

    #[test]
    fn filters_reject_bad_input() {
        assert_eq!(
            call(&[9, 1, 1, 0, 1]),
            StepOutcome::Finished { value: Some(-400) }
        );
        assert_eq!(
            call(&[1, 0, 1, 0, 1]),
            StepOutcome::Finished { value: Some(-401) }
        );
        assert_eq!(
            call(&[1, 1, 999, 0, 1]),
            StepOutcome::Finished { value: Some(-403) }
        );
        assert_eq!(
            call(&[1, 1, 1, 80, 1]),
            StepOutcome::Finished { value: Some(-404) }
        );
        assert_eq!(
            call(&[1, 1, 1, 0, 3]),
            StepOutcome::Finished { value: Some(-406) }
        );
    }

    #[test]
    fn planted_bug_crashes_concretely() {
        // sips:1@127;udp → the stale binding read goes out of bounds.
        let out = call(&[2, 1, 127, 0, 1]);
        assert!(
            matches!(out, StepOutcome::Faulted(_)),
            "expected the planted crash, got {out:?}"
        );
    }
}
