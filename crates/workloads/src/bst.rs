//! A binary search tree driven one insertion per depth iteration —
//! exercises heap allocation, recursive structures, and stateful
//! multi-call search, with a planted crash two calls deep.

/// MiniC source. Toplevel: `insert(key)`; each depth iteration inserts one
/// key into a global tree. The "hot-key cache shortcut" dereferences
/// `root->left` without a NULL check, so the crash needs ≥1 prior insert
/// (to create a root with an empty left child) followed by the exact magic
/// key — a 2^-32 event for random testing, two directed runs for DART.
pub const BST_INSERT: &str = r#"
struct node { int key; struct node *left; struct node *right; };

struct node *root = NULL;
int size = 0;

struct node *fresh(int key) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->key = key;
    n->left = NULL;
    n->right = NULL;
    return n;
}

void insert(int key) {
    if (root == NULL) {
        root = fresh(key);
        size = 1;
        return;
    }

    /* planted bug: "hot key" shortcut pokes the root's left child
       without checking it exists */
    if (key == 23130) {
        root->left->key = key;       /* crash when left is NULL */
        return;
    }

    struct node *cur = root;
    while (1) {
        if (key == cur->key) return;     /* no duplicates */
        if (key < cur->key) {
            if (cur->left == NULL) {
                cur->left = fresh(key);
                size = size + 1;
                return;
            }
            cur = cur->left;
        } else {
            if (cur->right == NULL) {
                cur->right = fresh(key);
                size = size + 1;
                return;
            }
            cur = cur->right;
        }
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use dart_minic::compile;
    use dart_ram::{Machine, MachineConfig, StepOutcome, ZeroEnv};

    #[test]
    fn inserts_build_a_search_tree() {
        let compiled = compile(BST_INSERT).unwrap();
        let id = compiled.program.func_by_name("insert").unwrap();
        let mut m = Machine::new(&compiled.program, MachineConfig::default());
        for key in [50, 20, 70, 20, 60] {
            m.call(id, &[key]).unwrap();
            let out = m.run(&mut ZeroEnv);
            assert!(matches!(out, StepOutcome::Finished { .. }), "{out:?}");
        }
        // size global: 4 distinct keys.
        let size_off = compiled
            .program
            .global_names
            .iter()
            .find(|(n, _)| n == "size")
            .map(|&(_, off)| off)
            .unwrap();
        assert_eq!(m.mem().load(dart_ram::GLOBAL_BASE + size_off as i64), Ok(4));
    }

    #[test]
    fn magic_key_crashes_after_one_insert() {
        let compiled = compile(BST_INSERT).unwrap();
        let id = compiled.program.func_by_name("insert").unwrap();
        let mut m = Machine::new(&compiled.program, MachineConfig::default());
        m.call(id, &[5]).unwrap();
        assert!(matches!(m.run(&mut ZeroEnv), StepOutcome::Finished { .. }));
        m.call(id, &[23130]).unwrap();
        assert!(matches!(
            m.run(&mut ZeroEnv),
            StepOutcome::Faulted(dart_ram::Fault::NullDeref { .. })
        ));
    }

    #[test]
    fn magic_key_first_is_fine() {
        // As the first insert the magic key just becomes the root.
        let compiled = compile(BST_INSERT).unwrap();
        let id = compiled.program.func_by_name("insert").unwrap();
        let mut m = Machine::new(&compiled.program, MachineConfig::default());
        m.call(id, &[23130]).unwrap();
        assert!(matches!(m.run(&mut ZeroEnv), StepOutcome::Finished { .. }));
    }
}
