//! A MiniC implementation of the Needham-Schroeder public-key protocol
//! (paper §4.2).
//!
//! The program simulates initiator `A` and responder `B` interleaved in one
//! process, exactly like the ~400-line C implementation the paper tests.
//! Agents, keys and nonces are integers; `{x, y}Kz` is modeled as the tuple
//! `(key = z, d1 = x, d2 = y, d3 = identity-or-0)` — an agent can read a
//! tuple only when `key` equals its own identity, and the intruder reads
//! tuples encrypted with *his* key.
//!
//! The toplevel `deliver(to, key, d1, d2, d3)` injects one network message
//! per call; DART's `depth` is the number of injected messages, matching
//! the depth column of Figures 9 and 10.
//!
//! Two environment models:
//! * [`Intruder::Possibilistic`] — the most general environment: any tuple
//!   can be injected (DART can "guess" secrets by solving `d1 == NB`,
//!   which is why the paper finds only the projection of Lowe's attack, at
//!   depth 2).
//! * [`Intruder::DolevYao`] — an input filter accepts a message only if the
//!   intruder could construct it: either an exact replay of a previously
//!   transmitted tuple (forwarding an undecryptable blob) or a composition
//!   of values he has learned. The shortest violation is the full
//!   six-step Lowe attack, surfacing at depth 4 (Figure 10).
//!
//! The scenario: `A` initiates a session *with the intruder `I`* (as in
//! Lowe's attack); `B` only ever accepts sessions claimed to be from `A`.
//! The assertion says `B` completing a session he believes is with `A`
//! implies `A` actually ran a session with `B` — violated exactly by the
//! attack.

use std::fmt;

/// Which environment model surrounds the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intruder {
    /// Most general environment (no filter).
    Possibilistic,
    /// Dolev-Yao filter: forward or compose-from-knowledge only.
    DolevYao,
}

/// Whether (and how faithfully) Lowe's fix is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoweFix {
    /// Original protocol — vulnerable.
    Off,
    /// The *incomplete* fix the paper stumbled on: `B` adds its identity to
    /// message 2, but `A` validates it against "a legal responder" instead
    /// of against its session peer — the forwarded blob still passes.
    Incomplete,
    /// The complete fix: `A` checks the identity against its session peer;
    /// the attack becomes impossible.
    Complete,
}

impl fmt::Display for Intruder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intruder::Possibilistic => write!(f, "possibilistic"),
            Intruder::DolevYao => write!(f, "Dolev-Yao"),
        }
    }
}

/// Generates the MiniC source for the chosen configuration. The toplevel
/// function is `deliver`.
pub fn needham_schroeder(intruder: Intruder, fix: LoweFix) -> String {
    let fix_id_field = match fix {
        LoweFix::Off => "0",
        LoweFix::Incomplete | LoweFix::Complete => "2", // B's identity
    };
    let fix_check = match fix {
        LoweFix::Off => "",
        // Wrong check: "was this sent by *some* responder?" — the
        // forwarded blob carries B's identity and passes.
        LoweFix::Incomplete => "if (d3 != 2) return;",
        // Right check: "was this sent by *my* peer?" — A's peer is I.
        LoweFix::Complete => "if (d3 != a_peer) return;",
    };
    let filter = match intruder {
        Intruder::Possibilistic => "",
        Intruder::DolevYao => "if (!dolev_yao_ok(key, d1, d2, d3)) return;",
    };
    // The Fig. 10 encoding counts A's spontaneous first message as depth 1
    // ("after no specific input, A sends its first message"), so the
    // Dolev-Yao variant consumes the first delivery as the start event and
    // the full Lowe attack surfaces at depth 4. The Fig. 9 (possibilistic)
    // encoding does not, putting B's two-message projection at depth 2.
    let start_return = match intruder {
        Intruder::Possibilistic => "",
        Intruder::DolevYao => "return;",
    };

    format!(
        r#"
/* Needham-Schroeder public-key protocol: A (=1) initiates with the
   intruder I (=3); B (=2) responds. Public key of agent x is x. */

int NA = 1001; /* A's nonce */
int NB = 1002; /* B's nonce */
int NI = 1003; /* the intruder's own nonce */

int started = 0;

/* initiator A: 0 = idle, 1 = sent msg1, 2 = completed */
int a_state = 0;
int a_peer = 3;

/* responder B: 0 = idle, 1 = sent msg2, 2 = completed */
int b_state = 0;
int b_peer = 0;
int b_nonce = 0;

/* ---- the wire and the intruder's knowledge ----

   The atoms the intruder could ever learn are fixed by the protocol
   (identities, padding, his own nonce, and — after the right messages —
   NA and NB), so knowledge is two booleans rather than a set. This keeps
   the model's branching close to the paper's implementation; a set-with-
   membership-loop encoding is semantically identical but multiplies the
   path count per message by two orders of magnitude. */

int knows_na = 0;
int knows_nb = 0;

int seen_key[8];
int seen_d1[8];
int seen_d2[8];
int seen_d3[8];
int n_seen = 0;

/* every message put on the wire is observed: blobs the intruder cannot
   decrypt are recorded for later forwarding; blobs encrypted with his own
   key update his knowledge instead */
void transmit(int key, int d1, int d2, int d3) {{
    if (key == 3) {{
        if (d1 == 1001) knows_na = 1;
        if (d1 == 1002) knows_nb = 1;
        if (d2 == 1001) knows_na = 1;
        if (d2 == 1002) knows_nb = 1;
    }} else if (n_seen < 8) {{
        seen_key[n_seen] = key;
        seen_d1[n_seen] = d1;
        seen_d2[n_seen] = d2;
        seen_d3[n_seen] = d3;
        n_seen = n_seen + 1;
    }}
}}

/* a single value the intruder can produce */
int composable(int v) {{
    if (v >= 0 && v <= 3) return 1;            /* identities, padding */
    if (knows_na) {{ if (v == 1001) return 1; }}
    if (knows_nb) {{ if (v == 1002) return 1; }}
    return 0;
}}

/* Dolev-Yao constructibility: exact forward of an undecryptable blob, or
   composition of known values into a protocol-shaped message. (Like the
   paper's tuned intruder model — §4.2 reports trying several and keeping
   "the smallest state space we could get"; composing non-protocol-shaped
   junk only adds paths every receiver ignores.) */
int dolev_yao_ok(int key, int d1, int d2, int d3) {{
    int i;
    for (i = 0; i < n_seen; i++)
        if (seen_key[i] == key && seen_d1[i] == d1
            && seen_d2[i] == d2 && seen_d3[i] == d3)
            return 1;
    /* msg1 shape: {{x, ident}}K */
    if (d3 == 0 && composable(d1) && d2 >= 0 && d2 <= 3)
        return 1;
    return 0;
}}

/* ---- protocol roles ---- */

void a_receive(int key, int d1, int d2, int d3) {{
    if (key != 1) return;          /* A only decrypts with Ka */
    if (a_state == 1) {{
        /* msg2: {{Na, Nb'}} (+ responder identity with Lowe's fix) */
        if (d1 != NA) return;
        {fix_check}
        /* msg3: return the nonce, encrypted for A's peer */
        transmit(a_peer, d2, 0, 0);
        a_state = 2;
    }}
}}

void b_receive(int key, int d1, int d2, int d3) {{
    if (key != 2) return;          /* B only decrypts with Kb */
    if (b_state == 0) {{
        /* msg1: {{Na', X}}: B accepts sessions claimed to be from A */
        if (d2 != 1) return;
        b_peer = d2;
        b_nonce = d1;
        /* msg2: {{Na', Nb}}Ka (+ B's identity with Lowe's fix) */
        transmit(1, b_nonce, NB, {fix_id_field});
        b_state = 1;
    }} else if (b_state == 1) {{
        /* msg3: {{Nb}} */
        if (d1 != NB) return;
        b_state = 2;
        /* B believes it authenticated A — but A only ever ran a session
           with I. Authentication is violated: Lowe's attack. */
        assert(a_state == 2 && a_peer == 2);
    }}
}}

/* ---- toplevel: one network delivery per call ---- */

void deliver(int to, int key, int d1, int d2, int d3) {{
    if (!started) {{
        started = 1;
        /* A spontaneously opens a session with I: msg1 = {{Na, A}}Ki */
        transmit(a_peer, NA, 1, 0);
        a_state = 1;
        {start_return}
    }}
    {filter}
    if (to == 1) a_receive(key, d1, d2, d3);
    else if (to == 2) b_receive(key, d1, d2, d3);
    /* messages to I need no handler: his knowledge grows in transmit() */
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_minic::compile;
    use dart_ram::{Machine, MachineConfig, StepOutcome, ZeroEnv};

    fn deliver_seq(src: &str, msgs: &[[i64; 5]]) -> StepOutcome {
        let compiled = compile(src).unwrap();
        let id = compiled.program.func_by_name("deliver").unwrap();
        let mut m = Machine::new(&compiled.program, MachineConfig::default());
        for &(off, v) in &compiled.global_inits {
            m.mem_mut()
                .store(dart_ram::GLOBAL_BASE + off as i64, v)
                .unwrap();
        }
        let mut last = StepOutcome::Halted;
        for msg in msgs {
            m.call(id, msg).unwrap();
            last = m.run(&mut ZeroEnv);
            if last.is_terminal() && !matches!(last, StepOutcome::Finished { .. }) {
                return last;
            }
        }
        last
    }

    /// The full Lowe attack, hand-scripted, against each configuration.
    /// NA = 1001, NB = 1002. The paper's six steps collapse to four
    /// deliveries because the intruder is an input filter (§4.2).
    fn lowe_attack() -> Vec<[i64; 5]> {
        vec![
            // 1. any first delivery triggers A -> I: {NA, A}Ki
            [3, 3, 0, 0, 0],
            // 2. I(A) -> B: {NA, A}Kb (composed: NA is known)
            [2, 2, 1001, 1, 0],
            // 3. forward B's reply to A: {NA, NB, id}Ka
            [1, 1, 1001, 1002, 0], // with fix off, d3 = 0
            // 4. I(A) -> B: {NB}Kb (NB learned from A's msg3 to I)
            [2, 2, 1002, 0, 0],
        ]
    }

    #[test]
    fn all_configurations_compile() {
        for intruder in [Intruder::Possibilistic, Intruder::DolevYao] {
            for fix in [LoweFix::Off, LoweFix::Incomplete, LoweFix::Complete] {
                let src = needham_schroeder(intruder, fix);
                compile(&src).unwrap_or_else(|e| panic!("{intruder:?}/{fix:?}: {e}"));
            }
        }
    }

    #[test]
    fn scripted_attack_violates_assertion_no_fix() {
        for intruder in [Intruder::Possibilistic, Intruder::DolevYao] {
            let src = needham_schroeder(intruder, LoweFix::Off);
            let out = deliver_seq(&src, &lowe_attack());
            assert!(
                matches!(out, StepOutcome::Aborted { .. }),
                "{intruder}: attack must violate the assertion, got {out:?}"
            );
        }
    }

    #[test]
    fn scripted_attack_passes_incomplete_fix() {
        // With the incomplete fix, B includes its identity (2) and A's
        // wrong check lets the forwarded blob through.
        let mut msgs = lowe_attack();
        msgs[2] = [1, 1, 1001, 1002, 2]; // forwarded blob now carries d3 = 2
        let src = needham_schroeder(Intruder::DolevYao, LoweFix::Incomplete);
        let out = deliver_seq(&src, &msgs);
        assert!(matches!(out, StepOutcome::Aborted { .. }), "{out:?}");
    }

    #[test]
    fn scripted_attack_blocked_by_complete_fix() {
        let mut msgs = lowe_attack();
        msgs[2] = [1, 1, 1001, 1002, 2];
        let src = needham_schroeder(Intruder::DolevYao, LoweFix::Complete);
        let out = deliver_seq(&src, &msgs);
        assert!(
            matches!(out, StepOutcome::Finished { .. }),
            "complete fix must block the attack, got {out:?}"
        );
    }

    #[test]
    fn dolev_yao_filter_blocks_nonce_guessing() {
        // Injecting {NB}Kb directly (without the attack prefix) must be
        // filtered: NB is not constructible.
        let src = needham_schroeder(Intruder::DolevYao, LoweFix::Off);
        let out = deliver_seq(
            &src,
            &[[3, 3, 0, 0, 0], [2, 2, 1001, 1, 0], [2, 2, 1002, 0, 0]],
        );
        assert!(
            matches!(out, StepOutcome::Finished { .. }),
            "guessed nonce must be filtered, got {out:?}"
        );
    }

    #[test]
    fn possibilistic_two_message_projection() {
        // §4.2: with the most general environment, B can be driven to
        // completion in two messages (the attack's projection onto B).
        let src = needham_schroeder(Intruder::Possibilistic, LoweFix::Off);
        let out = deliver_seq(&src, &[[2, 2, 777, 1, 0], [2, 2, 1002, 0, 0]]);
        assert!(matches!(out, StepOutcome::Aborted { .. }), "{out:?}");
    }

    #[test]
    fn single_message_cannot_violate() {
        for intruder in [Intruder::Possibilistic, Intruder::DolevYao] {
            let src = needham_schroeder(intruder, LoweFix::Off);
            // Exhaustively meaningful single messages cannot complete B.
            for msg in [
                [2i64, 2, 1001, 1, 0],
                [2, 2, 1002, 0, 0],
                [1, 1, 1001, 1002, 0],
            ] {
                let out = deliver_seq(&src, &[msg]);
                assert!(matches!(out, StepOutcome::Finished { .. }), "{msg:?}");
            }
        }
    }
}
