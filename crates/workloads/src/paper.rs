//! The example programs of the paper's §2 and §4.1, verbatim in MiniC.

/// §2.1 — the introductory `h`/`f` pair: random testing is hopeless, DART
/// finds the abort on its second run.
pub const PAPER_H: &str = r#"
int f(int x) { return 2 * x; }

int h(int x, int y) {
    if (x != y)
        if (f(x) == x + 10)
            abort();
    return 0;
}
"#;

/// §2.4 — the worked example whose directed search terminates after proving
/// both paths of the inner conditional infeasible.
pub const EXAMPLE_2_4: &str = r#"
int f(int x, int y) {
    int z;
    z = y;
    if (x == z)
        if (y == x + 10)
            abort();
    return 0;
}
"#;

/// §2.5 — the pointer-cast aliasing example that defeats static alias
/// analysis but falls to concolic execution immediately.
pub const STRUCT_CAST: &str = r#"
struct foo { int i; char c; };

void bar(struct foo *a) {
    if (a->c == 0) {
        *((char *)a + sizeof(int)) = 1;
        if (a->c != 0)
            abort();
    }
}
"#;

/// §2.5 — `foobar`: the non-linear guard (`x*x*x > 0`) generates no
/// constraint; DART still reaches the feasible abort with probability ~1/2
/// per random restart, while a static-symbolic-execution tool is stuck and
/// predicate abstraction reports a false alarm on the unreachable abort.
pub const FOOBAR: &str = r#"
int foobar(int x, int y) {
    if (x * x * x > 0) {
        if (x > 0 && y == 10)
            abort();
    } else {
        if (x > 0 && y == 20)
            abort();
    }
    return 0;
}
"#;

/// §4.1, Fig. 6 — the AC-controller: input-filtering code that only values
/// 0..3 get through; the assertion is violated by the message sequence
/// (3, 0) at depth 2.
pub const AC_CONTROLLER: &str = r#"
/* initially, */
int is_room_hot = 0;    /* room is not hot */
int is_door_closed = 0; /* and door is open */
int ac = 0;             /* so, ac is off */

void ac_controller(int message) {
    if (message == 0) is_room_hot = 1;
    if (message == 1) is_room_hot = 0;
    if (message == 2) { is_door_closed = 0; ac = 0; }
    if (message == 3) {
        is_door_closed = 1;
        if (is_room_hot) ac = 1;
    }
    /* check correctness */
    if (is_room_hot && is_door_closed && !ac)
        abort();
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use dart_minic::compile;

    #[test]
    fn all_paper_sources_compile() {
        for (name, src) in [
            ("PAPER_H", PAPER_H),
            ("EXAMPLE_2_4", EXAMPLE_2_4),
            ("STRUCT_CAST", STRUCT_CAST),
            ("FOOBAR", FOOBAR),
            ("AC_CONTROLLER", AC_CONTROLLER),
        ] {
            compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn toplevels_exist() {
        assert!(compile(PAPER_H).unwrap().fn_sig("h").is_some());
        assert!(compile(AC_CONTROLLER)
            .unwrap()
            .fn_sig("ac_controller")
            .is_some());
        assert!(compile(FOOBAR).unwrap().fn_sig("foobar").is_some());
        assert!(compile(STRUCT_CAST).unwrap().fn_sig("bar").is_some());
    }
}
