//! # dart-workloads — the benchmark programs of the DART paper
//!
//! MiniC sources (and generators) for everything the paper's evaluation
//! (§4) runs:
//!
//! * [`paper`] — the §2 vignettes and the §4.1 AC-controller (Fig. 6),
//! * [`needham_schroeder`](crate::needham_schroeder()) — the §4.2 protocol implementation with both
//!   intruder models and the Lowe-fix variants,
//! * [`osip`] — a seeded generator reproducing the §4.3 oSIP defect
//!   distribution plus the unchecked-`alloca` parser bug,
//! * [`classics`] — classic testing benchmarks (triangle classification,
//!   a TCAS-like advisory, a bounded stack, a lock automaton) used by the
//!   extended test suite and the ablation benches.
//!
//! ## Quickstart
//!
//! ```
//! use dart_workloads::{needham_schroeder, Intruder, LoweFix};
//!
//! let src = needham_schroeder(Intruder::DolevYao, LoweFix::Off);
//! let compiled = dart_minic::compile(&src)?;
//! assert!(compiled.fn_sig("deliver").is_some());
//! # Ok::<(), dart_minic::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bst;
pub mod classics;
pub mod needham_schroeder;
pub mod osip;
pub mod paper;
pub mod sip_uri;

pub use bst::BST_INSERT;
pub use classics::{BOUNDED_STACK, LOCK_FSM, TCAS_LITE, TRIANGLE_BUGGY, TRIANGLE_FIXED};
pub use needham_schroeder::{needham_schroeder, Intruder, LoweFix};
pub use osip::{generate as generate_osip, OsipConfig, OsipFn, OsipLibrary, Planted};
pub use paper::{AC_CONTROLLER, EXAMPLE_2_4, FOOBAR, PAPER_H, STRUCT_CAST};
pub use sip_uri::SIP_URI_PARSER;
