//! A synthetic oSIP-like library (paper §4.3).
//!
//! The paper unit-tests ~600 externally visible functions of the oSIP
//! library and finds that 65 % of them can be crashed within 1000 runs —
//! almost all through the same defect pattern: "an oSIP function takes as
//! argument a pointer to a data structure and then dereferences that
//! pointer without checking first whether the pointer is non-NULL", with
//! guarding applied *inconsistently* across functions and paths. It also
//! finds one deep, externally controllable crash: `osip_message_parse`
//! copies the message into `alloca(size)` without checking the result, so
//! a > 2.5 MB message makes `alloca` return NULL and the parser crashes.
//!
//! We cannot port 30 kLoC of oSIP, so this module *generates* a library
//! with the same defect distribution (see DESIGN.md). Each generated
//! function carries ground truth ([`Planted`]) so the harness can report
//! detection rates honestly — including the bug classes DART is expected
//! to miss (faults with no guarding branch to direct through, and
//! boundary off-by-ones the solver has no reason to aim at).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Ground truth for one generated function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Planted {
    /// No defect: NULL is checked on every path.
    None,
    /// The paper's signature pattern: pointer parameter dereferenced with
    /// no NULL check at all. Found by DART within a couple of runs (the
    /// pointer coin lands NULL half the time).
    UnguardedNullDeref,
    /// NULL checked on the common path, unchecked on a path guarded by an
    /// equality on another argument — random testing essentially never
    /// reaches it; the directed search flips the guard.
    GuardedWrongPath,
    /// An input-gated infinite loop (DART reports non-termination).
    NonTermination,
    /// Division whose zero-divisor case has no guarding branch: no
    /// constraint ever points at it, so DART finds it only by luck.
    BlindDivByZero,
    /// In-bounds check off by one (`<=` instead of `<`): crashes only at
    /// the exact boundary value, which nothing directs the solver toward.
    BoundaryOffByOne,
}

impl Planted {
    /// Whether DART is *expected* to find this defect within a small run
    /// budget (the paper's 1000).
    pub fn expected_found(self) -> bool {
        matches!(
            self,
            Planted::UnguardedNullDeref | Planted::GuardedWrongPath | Planted::NonTermination
        )
    }

    /// Whether a defect exists at all.
    pub fn is_bug(self) -> bool {
        self != Planted::None
    }
}

/// One generated externally visible function.
#[derive(Debug, Clone)]
pub struct OsipFn {
    /// Function name (`osip_…`).
    pub name: String,
    /// Ground truth.
    pub planted: Planted,
}

/// A generated library.
#[derive(Debug, Clone)]
pub struct OsipLibrary {
    /// Complete MiniC source (all functions plus the message parser).
    pub source: String,
    /// The externally visible functions, in source order (excluding the
    /// parser, which is listed last with its own ground truth).
    pub functions: Vec<OsipFn>,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct OsipConfig {
    /// Number of generated API functions (the paper tests ~600).
    pub num_functions: usize,
    /// RNG seed (the library is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for OsipConfig {
    fn default() -> OsipConfig {
        OsipConfig {
            num_functions: 120,
            seed: 0xC0FFEE,
        }
    }
}

/// Generates the library. The defect mix approximates the paper's
/// findings: ~50 % plainly unguarded, ~10 % unguarded on a hard-to-reach
/// path, ~5 % input-gated hangs (≈ 65 % discoverable), ~20 % correctly
/// guarded, and ~10 % planted-but-hard (blind division, boundary) to keep
/// the detection-rate table honest.
pub fn generate(config: OsipConfig) -> OsipLibrary {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut src = String::new();

    // A few message-like structs with 2..=5 int fields.
    let num_structs: usize = 4;
    let mut field_counts = Vec::new();
    for s in 0..num_structs {
        let nf = rng.gen_range(2..=5);
        field_counts.push(nf);
        let _ = write!(src, "struct hdr{s} {{ ");
        for f in 0..nf {
            let _ = write!(src, "int f{f}; ");
        }
        let _ = writeln!(src, "}};");
    }
    let _ = writeln!(src);

    let mut functions = Vec::with_capacity(config.num_functions);
    for i in 0..config.num_functions {
        let roll: f64 = rng.gen();
        let planted = if roll < 0.50 {
            Planted::UnguardedNullDeref
        } else if roll < 0.60 {
            Planted::GuardedWrongPath
        } else if roll < 0.65 {
            Planted::NonTermination
        } else if roll < 0.85 {
            Planted::None
        } else if roll < 0.90 {
            Planted::BlindDivByZero
        } else {
            Planted::BoundaryOffByOne
        };
        let name = format!("osip_fn_{i}");
        let s = rng.gen_range(0..num_structs);
        let nf = field_counts[s];
        let f0 = rng.gen_range(0..nf);
        let f1 = rng.gen_range(0..nf);
        let magic: i64 = rng.gen_range(2..100_000);
        match planted {
            Planted::UnguardedNullDeref => {
                let _ = writeln!(
                    src,
                    r#"int {name}(struct hdr{s} *p, int flags) {{
    int acc = p->f{f0} + flags;      /* no NULL guard (paper's pattern) */
    if (p->f{f1} > 0) acc = acc + p->f{f1};
    return acc;
}}
"#
                );
            }
            Planted::GuardedWrongPath => {
                let _ = writeln!(
                    src,
                    r#"int {name}(struct hdr{s} *p, int mode) {{
    if (mode == {magic}) {{
        return p->f{f0};             /* unguarded on this rare path */
    }}
    if (p == NULL) return -1;
    return p->f{f1};
}}
"#
                );
            }
            Planted::NonTermination => {
                let _ = writeln!(
                    src,
                    r#"int {name}(struct hdr{s} *p, int retries) {{
    if (p == NULL) return -1;
    while (retries == {magic}) {{
        /* lost wakeup: spins forever on this retry count */
    }}
    return p->f{f0};
}}
"#
                );
            }
            Planted::None => {
                let _ = writeln!(
                    src,
                    r#"int {name}(struct hdr{s} *p, int flags) {{
    if (p == NULL) return -1;
    if (flags < 0) return -2;
    if (p->f{f0} > p->f{f1}) return p->f{f0};
    return p->f{f1} + flags;
}}
"#
                );
            }
            Planted::BlindDivByZero => {
                let _ = writeln!(
                    src,
                    r#"int {name}(struct hdr{s} *p, int weight) {{
    if (p == NULL) return -1;
    /* no branch mentions weight == {magic}: nothing to direct toward */
    return p->f{f0} / (weight - {magic});
}}
"#
                );
            }
            Planted::BoundaryOffByOne => {
                let n = rng.gen_range(3..8);
                let _ = writeln!(
                    src,
                    r#"int {name}(int idx) {{
    int buf[{n}];
    int i;
    for (i = 0; i < {n}; i++) buf[i] = i;
    if (idx >= 0 && idx <= {n}) {{   /* off by one: idx == {n} overflows */
        return buf[idx];
    }}
    return -1;
}}
"#
                );
            }
        }
        functions.push(OsipFn { name, planted });
    }

    // The parser with the paper's unchecked-alloca vulnerability.
    let _ = writeln!(
        src,
        r#"struct sip_msg {{ int len; int h0; int h1; int h2; }};

/* The paper's deep bug (§4.3): the message is copied into stack space
   via alloca(size); the result is never checked, so an oversized message
   makes alloca return NULL and the parser crashes on the first store. */
int osip_message_parse(struct sip_msg *m) {{
    if (m == NULL) return -1;
    if (m->len < 4) return -2;       /* too short to be a SIP message */
    int *buf = (int *) alloca(m->len);
    buf[0] = m->h0;                  /* CRASH when alloca failed */
    buf[1] = m->h1;
    buf[2] = m->h2;
    return buf[0];
}}
"#
    );
    functions.push(OsipFn {
        name: "osip_message_parse".into(),
        planted: Planted::UnguardedNullDeref, // unchecked allocation result
    });

    OsipLibrary {
        source: src,
        functions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_minic::compile;

    #[test]
    fn generated_library_compiles() {
        let lib = generate(OsipConfig {
            num_functions: 60,
            seed: 7,
        });
        let compiled =
            compile(&lib.source).unwrap_or_else(|e| panic!("generated library must compile: {e}"));
        for f in &lib.functions {
            assert!(
                compiled.fn_sig(&f.name).is_some(),
                "function {} missing",
                f.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(OsipConfig {
            num_functions: 30,
            seed: 9,
        });
        let b = generate(OsipConfig {
            num_functions: 30,
            seed: 9,
        });
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn defect_mix_is_roughly_calibrated() {
        let lib = generate(OsipConfig {
            num_functions: 400,
            seed: 3,
        });
        let expected_found = lib
            .functions
            .iter()
            .filter(|f| f.planted.expected_found())
            .count() as f64
            / lib.functions.len() as f64;
        assert!(
            (0.55..=0.75).contains(&expected_found),
            "discoverable fraction should sit near the paper's 65%, got {expected_found}"
        );
    }

    #[test]
    fn parser_crashes_on_oversized_message_concretely() {
        use dart_ram::{Machine, MachineConfig, StepOutcome, ZeroEnv};
        let lib = generate(OsipConfig {
            num_functions: 1,
            seed: 1,
        });
        let compiled = compile(&lib.source).unwrap();
        let id = compiled.program.func_by_name("osip_message_parse").unwrap();

        // Build a message with a huge length.
        let mut m = Machine::new(&compiled.program, MachineConfig::default());
        let msg = m.mem_mut().alloc_heap(4);
        m.mem_mut().store(msg, 1 << 30).unwrap(); // len: ~1G words
        m.call(id, &[msg]).unwrap();
        let out = m.run(&mut ZeroEnv);
        assert!(
            matches!(out, StepOutcome::Faulted(dart_ram::Fault::NullDeref { .. })),
            "oversized message must crash the parser, got {out:?}"
        );

        // A small message parses fine.
        let mut m = Machine::new(&compiled.program, MachineConfig::default());
        let msg = m.mem_mut().alloc_heap(4);
        m.mem_mut().store(msg, 4).unwrap();
        m.mem_mut().store(msg + 1, 42).unwrap();
        m.call(id, &[msg]).unwrap();
        assert_eq!(
            m.run(&mut ZeroEnv),
            StepOutcome::Finished { value: Some(42) }
        );
    }
}
