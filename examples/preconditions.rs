//! Functional testing with preconditions and postconditions (paper §6).
//!
//! The paper's conclusion: "The user can also restrict the most general
//! environment or test for functional correctness by adding interface code
//! to the program in order to filter inputs (i.e., enforce pre-conditions)
//! and analyze outputs (i.e., test post-conditions)."
//!
//! MiniC provides `assume(e)` (violated assumptions end the run silently)
//! and `assert(e)` (violations are bugs). This example checks a triangle
//! classifier against its specification — with a seeded bug for DART to
//! find — then verifies the fixed version exhaustively (the directed
//! search *terminates*, proving every feasible path assertion-free).
//!
//! Run with: `cargo run --release --example preconditions`

use dart::{Dart, DartConfig, Outcome};

const BUGGY: &str = r#"
    /* 1 = equilateral, 2 = isosceles, 3 = scalene */
    int classify(int a, int b, int c) {
        if (a == b && b == c) return 1;
        if (a == b || b == c) return 2;   /* BUG: forgets a == c */
        return 3;
    }

    void check(int a, int b, int c) {
        /* preconditions: positive sides forming a valid triangle */
        assume(a > 0 && b > 0 && c > 0);
        assume(a + b > c && b + c > a && a + c > b);

        int kind = classify(a, b, c);

        /* postconditions */
        if (a == b && b == c) assert(kind == 1);
        if (a != b && b != c && a != c) assert(kind == 3);
        if (a == c && a != b) assert(kind == 2);   /* fails in the buggy version */
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fixed_src = BUGGY.replace(
        "if (a == b || b == c) return 2;   /* BUG: forgets a == c */",
        "if (a == b || b == c || a == c) return 2;",
    );

    let buggy = dart_minic::compile(BUGGY)?;
    let report = Dart::new(&buggy, "check", DartConfig::default())?.run();
    println!("buggy classifier:  {report}");
    let bug = report.bug().expect("postcondition violation found");
    let sides: Vec<i64> = bug.inputs.iter().map(|s| s.value).collect();
    println!(
        "counterexample triangle: a={}, b={}, c={} (isosceles with a == c)",
        sides[0], sides[1], sides[2]
    );

    let fixed = dart_minic::compile(&fixed_src)?;
    let report = Dart::new(
        &fixed,
        "check",
        DartConfig {
            max_runs: 100_000,
            ..DartConfig::default()
        },
    )?
    .run();
    println!("fixed classifier:  {report}");
    assert!(!report.found_bug());
    assert_eq!(
        report.outcome,
        Outcome::Complete,
        "directed search proves every feasible path satisfies the spec"
    );
    println!(
        "the fixed version is verified: all {} feasible paths explored, \
         no postcondition violated",
        report.runs
    );
    Ok(())
}
