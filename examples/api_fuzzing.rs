//! Unit-testing a whole library API with zero harness code (paper §4.3).
//!
//! The paper points DART at each of oSIP's ~600 externally visible
//! functions in turn, capped at 1000 runs per function, and crashes 65 %
//! of them — almost all via pointer parameters dereferenced without NULL
//! checks. This example does the same against the synthetic oSIP-like
//! library (see DESIGN.md for the substitution), prints the per-class
//! detection table, and demonstrates the deep `alloca` parser bug.
//!
//! Run with: `cargo run --release --example api_fuzzing`

use dart::{Dart, DartConfig};
use dart_workloads::{generate_osip, OsipConfig, Planted};
use std::collections::BTreeMap;

fn main() {
    let lib = generate_osip(OsipConfig {
        num_functions: 80,
        seed: 2026,
    });
    let compiled = dart_minic::compile(&lib.source).expect("library compiles");

    let mut crashed = 0usize;
    let mut by_class: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for f in &lib.functions {
        let report = Dart::new(
            &compiled,
            &f.name,
            DartConfig {
                max_runs: 1000, // the paper's per-function cap
                seed: 7,
                ..DartConfig::default()
            },
        )
        .expect("function exists")
        .run();
        let found = report.found_bug();
        crashed += usize::from(found);
        let class = match f.planted {
            Planted::None => "correctly guarded",
            Planted::UnguardedNullDeref => "unguarded NULL deref",
            Planted::GuardedWrongPath => "guard missing on rare path",
            Planted::NonTermination => "input-gated hang",
            Planted::BlindDivByZero => "blind division by zero",
            Planted::BoundaryOffByOne => "boundary off-by-one",
        };
        let e = by_class.entry(class).or_insert((0, 0));
        e.0 += usize::from(found);
        e.1 += 1;
    }

    println!(
        "crashed {crashed} of {} externally visible functions ({:.0}%) within 1000 runs each",
        lib.functions.len(),
        100.0 * crashed as f64 / lib.functions.len() as f64
    );
    println!("(the paper reports 65% of oSIP's ~600 functions)\n");
    println!("{:<28} found/total", "defect class");
    for (class, (found, total)) in by_class {
        println!("{class:<28} {found}/{total}");
    }

    // The deep parser bug: externally controllable crash via an unchecked
    // alloca of the message length.
    let report = Dart::new(
        &compiled,
        "osip_message_parse",
        DartConfig {
            max_runs: 1000,
            seed: 3,
            ..DartConfig::default()
        },
    )
    .expect("parser exists")
    .run();
    println!("\nosip_message_parse: {report}");
    if let Some(bug) = report.bug() {
        println!("reproduction:\n{bug}");
    }
}
