//! Quickstart: test a C-like program with DART in a dozen lines.
//!
//! The program is the paper's opening example (§2.1): a function whose
//! error is hidden behind an interprocedural, input-dependent branch that
//! random testing has a 2^-32 chance of hitting per try. DART finds it on
//! its second run by solving the path constraint of the first.
//!
//! Run with: `cargo run --example quickstart`

use dart::{describe_interface, Dart, DartConfig, EngineMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int f(int x) { return 2 * x; }

        int h(int x, int y) {
            if (x != y)
                if (f(x) == x + 10)
                    abort();  /* reachable only when x == 10 && x != y */
            return 0;
        }
    "#;

    // 1. Compile. Interface extraction is automatic: the toplevel's
    //    arguments are the inputs (plus any extern variables/functions).
    let compiled = dart_minic::compile(source)?;
    println!("{}", describe_interface(&compiled, "h").expect("h exists"));

    // 2. Run DART.
    let report = Dart::new(&compiled, "h", DartConfig::default())?.run();
    println!("directed: {report}");
    let bug = report.bug().expect("DART finds the abort");
    println!("witness input vector:\n{bug}");

    // 3. Compare with the random-testing baseline under the same budget.
    let random = Dart::new(
        &compiled,
        "h",
        DartConfig {
            mode: EngineMode::RandomOnly,
            max_runs: 10_000,
            ..DartConfig::default()
        },
    )?
    .run();
    println!("random baseline: {random}");
    assert!(!random.found_bug(), "2^-32 per run: effectively never");

    Ok(())
}
