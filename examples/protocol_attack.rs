//! Finding Lowe's attack on the Needham-Schroeder protocol (paper §4.2).
//!
//! DART drives a MiniC implementation of the protocol placed in a
//! Dolev-Yao environment (an input filter that only lets through messages
//! an intruder could actually construct). The shortest assertion violation
//! is the full six-step man-in-the-middle attack, surfacing at depth 4.
//! The example then re-runs with Lowe's fix — first the *incomplete*
//! variant (the implementation bug the paper's authors discovered with
//! DART), then the complete one, which resists the search.
//!
//! Run with: `cargo run --release --example protocol_attack`

use dart::{Dart, DartConfig};
use dart_workloads::{needham_schroeder, Intruder, LoweFix};
use std::time::Instant;

fn session(fix: LoweFix, depth: u32, max_runs: u64) -> dart::SessionReport {
    let src = needham_schroeder(Intruder::DolevYao, fix);
    let compiled = dart_minic::compile(&src).expect("workload compiles");
    Dart::new(
        &compiled,
        "deliver",
        DartConfig {
            depth,
            max_runs,
            seed: 1,
            ..DartConfig::default()
        },
    )
    .expect("deliver exists")
    .run()
}

fn main() {
    println!("Needham-Schroeder, Dolev-Yao intruder (paper Fig. 10)");
    println!("depth | result");
    for depth in 1..=4 {
        let t = Instant::now();
        let report = session(LoweFix::Off, depth, 200_000);
        let verdict = match report.bug() {
            Some(bug) => format!("ATTACK FOUND: {}", bug.kind),
            None => "no error".to_string(),
        };
        println!(
            "  {depth}   | {verdict} ({} runs, {:.1?})",
            report.runs,
            t.elapsed()
        );
        if let Some(bug) = report.bug() {
            println!("\nLowe's attack, as the discovered message sequence:");
            for slot in &bug.inputs {
                println!("  {} = {}", slot.name, slot.value);
            }
        }
    }

    println!("\nWith the incomplete Lowe fix (the bug DART uncovered):");
    let report = session(LoweFix::Incomplete, 4, 400_000);
    match report.bug() {
        Some(bug) => println!("  still vulnerable — {} ({} runs)", bug.kind, report.runs),
        None => println!("  no attack found ({} runs)", report.runs),
    }

    println!("\nWith the complete Lowe fix:");
    let report = session(LoweFix::Complete, 4, 400_000);
    match report.bug() {
        Some(bug) => println!("  UNEXPECTED: {} ({} runs)", bug.kind, report.runs),
        None => println!(
            "  no attack — search {} after {} runs",
            if report.is_complete() {
                "completed (all paths explored)"
            } else {
                "exhausted its budget"
            },
            report.runs
        ),
    }
}
