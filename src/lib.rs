//! # dart-repro — umbrella crate for the DART (PLDI 2005) reproduction
//!
//! Re-exports the workspace's crates so the repository-level examples and
//! integration tests have a single dependency surface:
//!
//! * [`solver`] — linear integer constraint solving (the `lp_solve` stand-in),
//! * [`ram`] — the RAM machine, memory model and interpreter,
//! * [`minic`] — the C-like language front end,
//! * [`sym`] — symbolic evaluation with concrete fallback,
//! * [`engine`] — the DART driver (directed / random / symbolic-only),
//! * [`workloads`] — the paper's benchmark programs.
//!
//! See the repository README for a tour, and `DESIGN.md` / `EXPERIMENTS.md`
//! for the paper-to-code mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dart as engine;
pub use dart_minic as minic;
pub use dart_ram as ram;
pub use dart_solver as solver;
pub use dart_sym as sym;
pub use dart_workloads as workloads;
