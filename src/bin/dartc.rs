//! `dartc` — the DART command-line tool.
//!
//! Point it at a MiniC source file and a toplevel function; it extracts the
//! interface, generates the random test driver, and runs the directed
//! search — no harness code required (the paper's headline claim).
//!
//! ```text
//! dartc program.mc --toplevel parse [options]
//!
//! options:
//!   --toplevel NAME    function under test (required unless --interface/--print-ir)
//!   --depth N          iterative toplevel calls per run        [1]
//!   --runs N           maximum instrumented runs               [100000]
//!   --seed N           RNG seed                                [0]
//!   --mode M           directed | random | symbolic | generational [directed]
//!   --strategy S       dfs | random-branch                     [dfs]
//!   --all-bugs         keep searching after the first bug
//!   --max-steps N      per-run step budget (non-termination)   [2000000]
//!   --interface        print the extracted interface and exit
//!   --print-ir         print the compiled RAM program and exit
//!   --stats            print detailed solver/cache statistics
//!   --no-cache         disable the solver query cache (outcomes unchanged)
//!   --save-bug FILE    write the first bug's input vector to FILE
//!   --replay FILE      replay a saved input vector instead of searching
//!   --trace            with --replay: print every executed statement
//! ```
//!
//! Exit status: 0 = no bug, 1 = bug found, 2 = usage/compile error.

use dart::{Dart, DartConfig, EngineMode, Strategy};
use std::process::ExitCode;

struct Options {
    file: String,
    toplevel: Option<String>,
    depth: u32,
    runs: u64,
    seed: u64,
    mode: EngineMode,
    strategy: Strategy,
    all_bugs: bool,
    max_steps: u64,
    interface_only: bool,
    print_ir: bool,
    save_bug: Option<String>,
    replay: Option<String>,
    trace: bool,
    stats: bool,
    no_cache: bool,
}

fn usage() -> &'static str {
    "usage: dartc <file.mc> --toplevel NAME [--depth N] [--runs N] [--seed N] \
     [--mode directed|random|symbolic|generational] [--strategy dfs|random-branch] \
     [--all-bugs] [--max-steps N] [--stats] [--no-cache] [--interface] [--print-ir]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        file: String::new(),
        toplevel: None,
        depth: 1,
        runs: 100_000,
        seed: 0,
        mode: EngineMode::Directed,
        strategy: Strategy::Dfs,
        all_bugs: false,
        max_steps: 2_000_000,
        interface_only: false,
        print_ir: false,
        save_bug: None,
        replay: None,
        trace: false,
        stats: false,
        no_cache: false,
    };
    let mut it = args.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--toplevel" => opts.toplevel = Some(value(&mut it, "--toplevel")?),
            "--depth" => {
                opts.depth = value(&mut it, "--depth")?
                    .parse()
                    .map_err(|_| "--depth expects a positive integer".to_string())?
            }
            "--runs" => {
                opts.runs = value(&mut it, "--runs")?
                    .parse()
                    .map_err(|_| "--runs expects an integer".to_string())?
            }
            "--seed" => {
                opts.seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--max-steps" => {
                opts.max_steps = value(&mut it, "--max-steps")?
                    .parse()
                    .map_err(|_| "--max-steps expects an integer".to_string())?
            }
            "--mode" => {
                opts.mode = match value(&mut it, "--mode")?.as_str() {
                    "directed" => EngineMode::Directed,
                    "random" => EngineMode::RandomOnly,
                    "symbolic" => EngineMode::SymbolicOnly,
                    "generational" => EngineMode::Generational,
                    other => return Err(format!("unknown mode `{other}`")),
                }
            }
            "--strategy" => {
                opts.strategy = match value(&mut it, "--strategy")?.as_str() {
                    "dfs" => Strategy::Dfs,
                    "random-branch" => Strategy::RandomBranch,
                    other => return Err(format!("unknown strategy `{other}`")),
                }
            }
            "--all-bugs" => opts.all_bugs = true,
            "--save-bug" => opts.save_bug = Some(value(&mut it, "--save-bug")?),
            "--replay" => opts.replay = Some(value(&mut it, "--replay")?),
            "--trace" => opts.trace = true,
            "--stats" => opts.stats = true,
            "--no-cache" => opts.no_cache = true,
            "--interface" => opts.interface_only = true,
            "--print-ir" => opts.print_ir = true,
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            file => {
                if !opts.file.is_empty() {
                    return Err("multiple input files given".into());
                }
                opts.file = file.to_string();
            }
        }
    }
    if opts.file.is_empty() {
        return Err("no input file".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("dartc: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dartc: cannot read {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let compiled = match dart_minic::compile(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dartc: {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };

    if opts.print_ir {
        print!("{}", compiled.program);
        return ExitCode::SUCCESS;
    }

    let Some(toplevel) = opts.toplevel.as_deref().map(str::to_string).or_else(|| {
        // Single-function programs need no flag.
        (compiled.functions.len() == 1).then(|| compiled.functions[0].name.clone())
    }) else {
        eprintln!(
            "dartc: choose a toplevel with --toplevel; defined functions: {}",
            compiled
                .functions
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    };

    match dart::describe_interface(&compiled, &toplevel) {
        Some(report) => print!("{report}"),
        None => {
            eprintln!("dartc: no function `{toplevel}` in {}", opts.file);
            return ExitCode::from(2);
        }
    }
    if opts.interface_only {
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dartc: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let slots = match dart::parse_inputs(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("dartc: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let machine = dart_ram::MachineConfig {
            max_steps: opts.max_steps,
            ..dart_ram::MachineConfig::default()
        };
        let termination = if opts.trace {
            let (termination, trace) =
                dart::replay_traced(&compiled, &toplevel, opts.depth, machine, slots, opts.seed);
            for line in &trace {
                println!("{line}");
            }
            termination
        } else {
            dart::replay(&compiled, &toplevel, opts.depth, machine, slots, opts.seed)
        };
        println!("replay: {termination:?}");
        return match termination {
            dart::RunTermination::Ok => ExitCode::SUCCESS,
            _ => ExitCode::from(1),
        };
    }

    let config = DartConfig {
        depth: opts.depth,
        max_runs: opts.runs,
        seed: opts.seed,
        mode: opts.mode,
        strategy: opts.strategy,
        stop_at_first_bug: !opts.all_bugs,
        machine: dart_ram::MachineConfig {
            max_steps: opts.max_steps,
            ..dart_ram::MachineConfig::default()
        },
        solver_cache: !opts.no_cache,
        ..DartConfig::default()
    };
    let session = Dart::new(&compiled, &toplevel, config).expect("toplevel checked above");
    let report = session.run();
    println!("\n{report}");
    if opts.stats {
        let s = &report.solver;
        let queries = s.sat + s.unsat + s.unknown;
        println!("\nsolver statistics:");
        println!("  queries            {queries}");
        println!("  sat                {}", s.sat);
        println!("  unsat              {}", s.unsat);
        println!("  unknown            {}", s.unknown);
        println!("  cache hits         {}", s.cache_hits);
        println!("  model reuse        {}", s.cache_model_reuse);
        println!("  split solves       {}", s.split_solves);
        println!("  exec time          {:?}", report.exec_time);
        println!("  solve time         {:?}", report.solve_time);
    }
    for bug in &report.bugs {
        println!("\n{bug}");
    }
    if let (Some(path), Some(bug)) = (&opts.save_bug, report.bug()) {
        let text = dart::serialize_inputs(&bug.inputs);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("dartc: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("reproduction written to {path}");
    }
    if report.found_bug() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<Options, String> {
        parse_args(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_file() {
        let o = parse(&["prog.mc"]).unwrap();
        assert_eq!(o.file, "prog.mc");
        assert_eq!(o.depth, 1);
        assert_eq!(o.mode, EngineMode::Directed);
        assert!(o.toplevel.is_none());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "p.mc",
            "--toplevel",
            "f",
            "--depth",
            "3",
            "--runs",
            "42",
            "--seed",
            "9",
            "--mode",
            "generational",
            "--strategy",
            "random-branch",
            "--all-bugs",
            "--max-steps",
            "1000",
            "--save-bug",
            "bug.txt",
            "--replay",
            "in.txt",
        ])
        .unwrap();
        assert_eq!(o.toplevel.as_deref(), Some("f"));
        assert_eq!(o.depth, 3);
        assert_eq!(o.runs, 42);
        assert_eq!(o.seed, 9);
        assert_eq!(o.mode, EngineMode::Generational);
        assert_eq!(o.strategy, Strategy::RandomBranch);
        assert!(o.all_bugs);
        assert_eq!(o.max_steps, 1000);
        assert_eq!(o.save_bug.as_deref(), Some("bug.txt"));
        assert_eq!(o.replay.as_deref(), Some("in.txt"));
    }

    #[test]
    fn stats_and_cache_flags() {
        let o = parse(&["p.mc", "--stats", "--no-cache"]).unwrap();
        assert!(o.stats);
        assert!(o.no_cache);
        let o = parse(&["p.mc"]).unwrap();
        assert!(!o.stats);
        assert!(!o.no_cache);
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["a.mc", "--mode", "quantum"]).is_err());
        assert!(parse(&["a.mc", "--depth"]).is_err());
        assert!(parse(&["a.mc", "b.mc"]).is_err());
        assert!(parse(&["a.mc", "--frobnicate"]).is_err());
    }
}
