//! `dartc` — the DART command-line tool.
//!
//! Point it at a MiniC source file and a toplevel function; it extracts the
//! interface, generates the random test driver, and runs the directed
//! search — no harness code required (the paper's headline claim).
//!
//! ```text
//! dartc program.mc --toplevel parse [options]
//!
//! options:
//!   --toplevel NAME    function under test (required unless --interface/--print-ir)
//!   --depth N          iterative toplevel calls per run        [1]
//!   --runs N           maximum instrumented runs               [100000]
//!   --seed N           RNG seed                                [0]
//!   --mode M           directed | random | symbolic | generational [directed]
//!   --engine M         alias of --mode
//!   --strategy S       dfs | random-branch                     [dfs]
//!   --frontier-order O scored | fifo: generational frontier discipline —
//!                      coverage-novelty priority, or the insertion-order
//!                      ablation baseline                       [scored]
//!   --frontier-budget N  cap the generational frontier at N queued items,
//!                      evicting the lowest-scored (0 is rejected) [unbounded]
//!   --checkpoint FILE  persist the generational session after every work
//!                      item; an existing FILE with the same seed resumes it
//!   --all-bugs         keep searching after the first bug
//!   --max-steps N      per-run step budget (non-termination)   [2000000]
//!   --mem-budget N     per-run allocation budget in words      [unbounded]
//!   --deadline MS      per-session wall-clock deadline; also caps
//!                      each solver query                       [none]
//!   --sweep NAMES      comma-separated toplevels: run one supervised
//!                      session per function (overrides --toplevel)
//!   --threads N        sweep parallelism                       [4]
//!   --max-retries N    reseeded retries per faulted sweep session [1]
//!   --farm             with --sweep: run each function in its own worker
//!                      process (true fault isolation — aborts, OOM kills
//!                      and runaway workers are contained and retried)
//!   --store PATH       farm-only: persistent verdict/fingerprint store
//!                      shared by all workers and future farm runs
//!   --stream PATH      farm-only: append one JSON line per finished
//!                      function to PATH (`-` streams to stdout)
//!   --worker-deadline MS  farm-only: kill any worker process that runs
//!                      longer than MS (fault, retriable, resumable)
//!   --solve-threads N  per-run candidate-query fan-out; results are
//!                      byte-identical to N=1       [$DART_SOLVE_THREADS or 1]
//!   --scheduler S      stealing | scoped: how N solver workers are
//!                      scheduled — persistent work-stealing pool, or
//!                      the per-walk scoped fan-out kept as an ablation
//!                      baseline (reports unchanged either way) [stealing]
//!   --exec-tier T      interp | compiled: which execution tier runs the
//!                      program — the tree-walking interpreter, or the
//!                      pre-decoded compiled tier (reports unchanged;
//!                      only throughput improves)  [$DART_EXEC_TIER or interp]
//!   --portfolio M      on | off: race the FD search against the warm LP
//!                      on each eligible query, first decisive verdict
//!                      wins (reports unchanged; only wall-clock
//!                      improves)                  [$DART_PORTFOLIO or off]
//!   --shared-cache     share solver verdicts across sweep sessions
//!                      (reports unchanged; only wall-clock improves)
//!   --interface        print the extracted interface and exit
//!   --print-ir         print the compiled RAM program and exit
//!   --stats            print detailed solver/cache statistics
//!   --no-cache         disable the solver query cache (outcomes unchanged)
//!   --save-bug FILE    write the first bug's input vector to FILE
//!   --replay FILE      replay a saved input vector instead of searching
//!   --trace            with --replay: print every executed statement
//! ```
//!
//! Exit status: 0 = no bug, 1 = bug found, 2 = usage/compile error.

use dart::{
    Dart, DartConfig, EngineMode, ExecTier, FrontierOrder, PortfolioMode, SchedulerMode, Strategy,
    SweepOutcome,
};
use std::process::ExitCode;

struct Options {
    file: String,
    toplevel: Option<String>,
    depth: u32,
    runs: u64,
    seed: u64,
    mode: EngineMode,
    strategy: Strategy,
    frontier_order: FrontierOrder,
    frontier_budget: Option<usize>,
    checkpoint: Option<String>,
    all_bugs: bool,
    max_steps: u64,
    mem_budget: Option<u64>,
    deadline_ms: Option<u64>,
    sweep: Option<String>,
    threads: usize,
    max_retries: u32,
    farm: bool,
    store: Option<String>,
    stream: Option<String>,
    worker_deadline_ms: Option<u64>,
    // Hidden worker mode: `dartc <file> --farm-worker --toplevel NAME
    // --farm-index I --farm-attempt A [engine flags]`, spawned by the
    // farm supervisor. Never part of the public usage string.
    farm_worker: bool,
    farm_index: usize,
    farm_attempt: u32,
    solve_threads: Option<usize>,
    scheduler: SchedulerMode,
    exec_tier: Option<ExecTier>,
    portfolio: Option<PortfolioMode>,
    shared_cache: bool,
    interface_only: bool,
    print_ir: bool,
    save_bug: Option<String>,
    replay: Option<String>,
    trace: bool,
    stats: bool,
    no_cache: bool,
}

fn usage() -> &'static str {
    "usage: dartc <file.mc> --toplevel NAME [--depth N] [--runs N] [--seed N] \
     [--mode|--engine directed|random|symbolic|generational] \
     [--strategy dfs|random-branch] [--frontier-order scored|fifo] \
     [--frontier-budget N] [--checkpoint FILE] \
     [--all-bugs] [--max-steps N] [--mem-budget N] [--deadline MS] \
     [--sweep NAMES --threads N --max-retries N] \
     [--farm --store PATH --stream PATH|- --worker-deadline MS] \
     [--solve-threads N] [--scheduler stealing|scoped] \
     [--exec-tier interp|compiled] [--portfolio on|off] [--shared-cache] \
     [--stats] [--no-cache] [--interface] [--print-ir]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        file: String::new(),
        toplevel: None,
        depth: 1,
        runs: 100_000,
        seed: 0,
        mode: EngineMode::Directed,
        strategy: Strategy::Dfs,
        frontier_order: FrontierOrder::Scored,
        frontier_budget: None,
        checkpoint: None,
        all_bugs: false,
        max_steps: 2_000_000,
        mem_budget: None,
        deadline_ms: None,
        sweep: None,
        threads: 4,
        max_retries: 1,
        farm: false,
        store: None,
        stream: None,
        worker_deadline_ms: None,
        farm_worker: false,
        farm_index: 0,
        farm_attempt: 0,
        solve_threads: None,
        scheduler: SchedulerMode::WorkStealing,
        exec_tier: None,
        portfolio: None,
        shared_cache: false,
        interface_only: false,
        print_ir: false,
        save_bug: None,
        replay: None,
        trace: false,
        stats: false,
        no_cache: false,
    };
    let mut it = args.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--toplevel" => opts.toplevel = Some(value(&mut it, "--toplevel")?),
            "--depth" => {
                opts.depth = value(&mut it, "--depth")?
                    .parse()
                    .map_err(|_| "--depth expects a positive integer".to_string())?
            }
            "--runs" => {
                opts.runs = value(&mut it, "--runs")?
                    .parse()
                    .map_err(|_| "--runs expects an integer".to_string())?
            }
            "--seed" => {
                opts.seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?
            }
            "--max-steps" => {
                opts.max_steps = value(&mut it, "--max-steps")?
                    .parse()
                    .map_err(|_| "--max-steps expects an integer".to_string())?
            }
            "--mem-budget" => {
                opts.mem_budget = Some(
                    value(&mut it, "--mem-budget")?
                        .parse()
                        .map_err(|_| "--mem-budget expects a word count".to_string())?,
                )
            }
            "--deadline" => {
                opts.deadline_ms = Some(
                    value(&mut it, "--deadline")?
                        .parse()
                        .map_err(|_| "--deadline expects milliseconds".to_string())?,
                )
            }
            "--sweep" => opts.sweep = Some(value(&mut it, "--sweep")?),
            "--threads" => {
                opts.threads = value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?
            }
            "--max-retries" => {
                opts.max_retries = value(&mut it, "--max-retries")?
                    .parse()
                    .map_err(|_| "--max-retries expects an integer".to_string())?
            }
            "--farm" => opts.farm = true,
            "--store" => opts.store = Some(value(&mut it, "--store")?),
            "--stream" => opts.stream = Some(value(&mut it, "--stream")?),
            "--worker-deadline" => {
                opts.worker_deadline_ms = Some(
                    value(&mut it, "--worker-deadline")?
                        .parse()
                        .map_err(|_| "--worker-deadline expects milliseconds".to_string())?,
                )
            }
            "--farm-worker" => opts.farm_worker = true,
            "--farm-index" => {
                opts.farm_index = value(&mut it, "--farm-index")?
                    .parse()
                    .map_err(|_| "--farm-index expects an integer".to_string())?
            }
            "--farm-attempt" => {
                opts.farm_attempt = value(&mut it, "--farm-attempt")?
                    .parse()
                    .map_err(|_| "--farm-attempt expects an integer".to_string())?
            }
            "--solve-threads" => {
                opts.solve_threads = Some(
                    value(&mut it, "--solve-threads")?
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "--solve-threads expects a positive integer".to_string())?,
                )
            }
            "--scheduler" => {
                opts.scheduler = match value(&mut it, "--scheduler")?.as_str() {
                    "stealing" => SchedulerMode::WorkStealing,
                    "scoped" => SchedulerMode::StaticScoped,
                    other => return Err(format!("unknown scheduler `{other}`")),
                }
            }
            "--exec-tier" => {
                opts.exec_tier = Some(match value(&mut it, "--exec-tier")?.as_str() {
                    "interp" => ExecTier::Interp,
                    "compiled" => ExecTier::Compiled,
                    other => return Err(format!("unknown exec tier `{other}`")),
                })
            }
            "--portfolio" => {
                opts.portfolio = Some(match value(&mut it, "--portfolio")?.as_str() {
                    "on" => PortfolioMode::On,
                    "off" => PortfolioMode::Off,
                    other => return Err(format!("unknown portfolio mode `{other}`")),
                })
            }
            "--shared-cache" => opts.shared_cache = true,
            "--mode" | "--engine" => {
                opts.mode = match value(&mut it, arg)?.as_str() {
                    "directed" => EngineMode::Directed,
                    "random" => EngineMode::RandomOnly,
                    "symbolic" => EngineMode::SymbolicOnly,
                    "generational" => EngineMode::Generational,
                    other => return Err(format!("unknown mode `{other}`")),
                }
            }
            "--frontier-order" => {
                opts.frontier_order = match value(&mut it, "--frontier-order")?.as_str() {
                    "scored" => FrontierOrder::Scored,
                    "fifo" => FrontierOrder::Fifo,
                    other => return Err(format!("unknown frontier order `{other}`")),
                }
            }
            "--frontier-budget" => {
                // 0 parses fine and is rejected by the engine as an
                // invalid config, like a zero DART_SOLVE_THREADS.
                opts.frontier_budget = Some(
                    value(&mut it, "--frontier-budget")?
                        .parse()
                        .map_err(|_| "--frontier-budget expects an integer".to_string())?,
                )
            }
            "--checkpoint" => opts.checkpoint = Some(value(&mut it, "--checkpoint")?),
            "--strategy" => {
                opts.strategy = match value(&mut it, "--strategy")?.as_str() {
                    "dfs" => Strategy::Dfs,
                    "random-branch" => Strategy::RandomBranch,
                    other => return Err(format!("unknown strategy `{other}`")),
                }
            }
            "--all-bugs" => opts.all_bugs = true,
            "--save-bug" => opts.save_bug = Some(value(&mut it, "--save-bug")?),
            "--replay" => opts.replay = Some(value(&mut it, "--replay")?),
            "--trace" => opts.trace = true,
            "--stats" => opts.stats = true,
            "--no-cache" => opts.no_cache = true,
            "--interface" => opts.interface_only = true,
            "--print-ir" => opts.print_ir = true,
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            file => {
                if !opts.file.is_empty() {
                    return Err("multiple input files given".into());
                }
                opts.file = file.to_string();
            }
        }
    }
    if opts.file.is_empty() {
        return Err("no input file".into());
    }
    if !opts.farm_worker {
        if opts.farm && opts.sweep.is_none() {
            return Err("--farm requires --sweep".into());
        }
        if !opts.farm
            && (opts.store.is_some() || opts.stream.is_some() || opts.worker_deadline_ms.is_some())
        {
            return Err("--store/--stream/--worker-deadline require --farm".into());
        }
    }
    Ok(opts)
}

fn build_config(opts: &Options) -> DartConfig {
    let mut config = DartConfig {
        depth: opts.depth,
        max_runs: opts.runs,
        seed: opts.seed,
        mode: opts.mode,
        strategy: opts.strategy,
        stop_at_first_bug: !opts.all_bugs,
        machine: dart_ram::MachineConfig {
            max_steps: opts.max_steps,
            ..dart_ram::MachineConfig::default()
        },
        solver_cache: !opts.no_cache,
        frontier_order: opts.frontier_order,
        frontier_budget: opts.frontier_budget,
        checkpoint: opts.checkpoint.as_ref().map(std::path::PathBuf::from),
        max_retries: opts.max_retries,
        scheduler: opts.scheduler,
        shared_cache: opts.shared_cache,
        ..DartConfig::default()
    };
    if let Some(n) = opts.solve_threads {
        // Unset, the default stands: $DART_SOLVE_THREADS, else 1.
        config.solve_threads = n;
    }
    if let Some(tier) = opts.exec_tier {
        // Unset, the default stands: $DART_EXEC_TIER, else the interpreter.
        config.exec_tier = tier;
    }
    if let Some(mode) = opts.portfolio {
        // Unset, the default stands: $DART_PORTFOLIO, else off.
        config.portfolio = mode;
    }
    if let Some(words) = opts.mem_budget {
        config.machine.budget.max_alloc_words = words;
    }
    if let Some(ms) = opts.deadline_ms {
        let d = std::time::Duration::from_millis(ms);
        config.deadline = Some(d);
        // Cap each solver query too, so a single runaway query cannot
        // overshoot the session deadline by an arbitrary amount.
        config.solver.deadline = Some(d);
    }
    config
}

/// Engine flags every worker process must inherit so a farm shard runs
/// the exact session the in-process sweep would. Supervisor-only flags
/// (`--threads`, `--max-retries`, `--farm`, `--stream`,
/// `--worker-deadline`) are deliberately absent; retries are driven by
/// the supervisor via `--farm-attempt`.
fn worker_forward_args(opts: &Options) -> Vec<String> {
    let mode = match opts.mode {
        EngineMode::Directed => "directed",
        EngineMode::RandomOnly => "random",
        EngineMode::SymbolicOnly => "symbolic",
        EngineMode::Generational => "generational",
    };
    let strategy = match opts.strategy {
        Strategy::Dfs => "dfs",
        Strategy::RandomBranch => "random-branch",
    };
    let order = match opts.frontier_order {
        FrontierOrder::Scored => "scored",
        FrontierOrder::Fifo => "fifo",
    };
    let scheduler = match opts.scheduler {
        SchedulerMode::WorkStealing => "stealing",
        SchedulerMode::StaticScoped => "scoped",
    };
    let mut args: Vec<String> = [
        "--depth",
        &opts.depth.to_string(),
        "--runs",
        &opts.runs.to_string(),
        "--seed",
        &opts.seed.to_string(),
        "--mode",
        mode,
        "--strategy",
        strategy,
        "--frontier-order",
        order,
        "--scheduler",
        scheduler,
        "--max-steps",
        &opts.max_steps.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if let Some(budget) = opts.frontier_budget {
        args.extend(["--frontier-budget".to_string(), budget.to_string()]);
    }
    if let Some(path) = &opts.checkpoint {
        args.extend(["--checkpoint".to_string(), path.clone()]);
    }
    if opts.all_bugs {
        args.push("--all-bugs".to_string());
    }
    if let Some(words) = opts.mem_budget {
        args.extend(["--mem-budget".to_string(), words.to_string()]);
    }
    if let Some(ms) = opts.deadline_ms {
        args.extend(["--deadline".to_string(), ms.to_string()]);
    }
    if let Some(n) = opts.solve_threads {
        args.extend(["--solve-threads".to_string(), n.to_string()]);
    }
    if let Some(tier) = opts.exec_tier {
        let tier = match tier {
            ExecTier::Interp => "interp",
            ExecTier::Compiled => "compiled",
            // Only an unrecognised $DART_EXEC_TIER yields this, and
            // `--exec-tier` (the sole writer of `opts.exec_tier`)
            // accepts interp|compiled alone.
            ExecTier::Invalid => unreachable!("--exec-tier never parses to Invalid"),
        };
        args.extend(["--exec-tier".to_string(), tier.to_string()]);
    }
    if let Some(mode) = opts.portfolio {
        let mode = match mode {
            PortfolioMode::Off => "off",
            PortfolioMode::On => "on",
            // Only an unrecognised $DART_PORTFOLIO yields this, and
            // `--portfolio` (the sole writer of `opts.portfolio`)
            // accepts on|off alone.
            PortfolioMode::Invalid => unreachable!("--portfolio never parses to Invalid"),
        };
        args.extend(["--portfolio".to_string(), mode.to_string()]);
    }
    if opts.shared_cache {
        args.push("--shared-cache".to_string());
    }
    if opts.no_cache {
        args.push("--no-cache".to_string());
    }
    if let Some(path) = &opts.store {
        args.extend(["--store".to_string(), path.clone()]);
    }
    args
}

/// Runs `--sweep` in farm mode: shards across worker processes spawned
/// from this same executable in the hidden `--farm-worker` mode.
fn run_farm_sweep(opts: &Options, names: &[String]) -> Result<Vec<dart::SweepResult>, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate own executable for farm workers: {e}"))?;
    let forwarded = worker_forward_args(opts);
    let file = opts.file.clone();
    let command = move |job: &dart::FarmJob| -> std::process::Command {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg(&file)
            .arg("--farm-worker")
            .arg("--toplevel")
            .arg(job.function)
            .arg("--farm-index")
            .arg(job.index.to_string())
            .arg("--farm-attempt")
            .arg(job.attempt.to_string())
            .args(&forwarded);
        cmd
    };
    let farm_options = dart::FarmOptions {
        threads: opts.threads,
        max_retries: opts.max_retries,
        worker_deadline: opts
            .worker_deadline_ms
            .map(std::time::Duration::from_millis),
        store: opts.store.as_ref().map(std::path::PathBuf::from),
        ..dart::FarmOptions::default()
    };
    // `Stdout` (unlocked) rather than `StdoutLock`: the lock guard is
    // not `Send`, and the stream writer crosses into scoped threads.
    let mut stdout_stream;
    let mut file_stream;
    let stream: Option<&mut (dyn std::io::Write + Send)> = match opts.stream.as_deref() {
        Some("-") => {
            stdout_stream = std::io::stdout();
            Some(&mut stdout_stream)
        }
        Some(path) => {
            file_stream = std::fs::File::create(path)
                .map_err(|e| format!("cannot create stream file {path}: {e}"))?;
            Some(&mut file_stream)
        }
        None => None,
    };
    dart::run_farm(names, &farm_options, &command, stream).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("dartc: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dartc: cannot read {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let compiled = match dart_minic::compile(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dartc: {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };

    if opts.farm_worker {
        // Hidden mode: one farm shard, spawned by the supervisor below.
        // All human-readable output goes to stderr; stdout carries the
        // wire protocol the supervisor parses.
        let Some(toplevel) = opts.toplevel.as_deref() else {
            eprintln!("dartc: --farm-worker requires --toplevel");
            return ExitCode::from(2);
        };
        if compiled.fn_sig(toplevel).is_none() {
            eprintln!("dartc: no function `{toplevel}` in {}", opts.file);
            return ExitCode::from(2);
        }
        #[allow(unused_mut)]
        let mut config = build_config(&opts);
        #[cfg(feature = "fault-injection")]
        {
            config.faults = dart::FaultPlan::from_env();
        }
        let store = opts.store.as_ref().map(std::path::PathBuf::from);
        let mut out = std::io::stdout();
        let code = dart::run_worker(
            &compiled,
            toplevel,
            opts.farm_index,
            opts.farm_attempt,
            &config,
            store.as_deref(),
            &mut out,
        );
        return ExitCode::from(code as u8);
    }

    if opts.print_ir {
        print!("{}", compiled.program);
        return ExitCode::SUCCESS;
    }

    if let Some(list) = &opts.sweep {
        let names: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if names.is_empty() {
            eprintln!("dartc: --sweep needs at least one function name");
            return ExitCode::from(2);
        }
        for name in &names {
            if compiled.fn_sig(name).is_none() {
                eprintln!("dartc: no function `{name}` in {}", opts.file);
                return ExitCode::from(2);
            }
        }
        let results = if opts.farm {
            match run_farm_sweep(&opts, &names) {
                Ok(r) => r,
                Err(msg) => {
                    eprintln!("dartc: {msg}");
                    return ExitCode::from(2);
                }
            }
        } else {
            match dart::sweep(&compiled, &names, &build_config(&opts), opts.threads) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("dartc: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        let mut buggy = 0usize;
        let mut faulted = 0usize;
        let mut retried = 0usize;
        for r in &results {
            match &r.outcome {
                SweepOutcome::Finished {
                    report,
                    retried: r2,
                } => {
                    if report.found_bug() {
                        buggy += 1;
                    }
                    if *r2 {
                        retried += 1;
                    }
                    let note = if *r2 { "  [recovered after retry]" } else { "" };
                    println!("{:<24} {report}{note}", r.function);
                }
                SweepOutcome::EngineFault {
                    message,
                    retried: r2,
                } => {
                    faulted += 1;
                    if *r2 {
                        retried += 1;
                    }
                    println!("{:<24} ENGINE FAULT: {message}", r.function);
                }
            }
        }
        println!(
            "\nsweep: {} functions | {} with bugs | {} engine faults | {} retried",
            results.len(),
            buggy,
            faulted,
            retried
        );
        return if buggy > 0 || faulted > 0 {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    let Some(toplevel) = opts.toplevel.as_deref().map(str::to_string).or_else(|| {
        // Single-function programs need no flag.
        (compiled.functions.len() == 1).then(|| compiled.functions[0].name.clone())
    }) else {
        eprintln!(
            "dartc: choose a toplevel with --toplevel; defined functions: {}",
            compiled
                .functions
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    };

    match dart::describe_interface(&compiled, &toplevel) {
        Some(report) => print!("{report}"),
        None => {
            eprintln!("dartc: no function `{toplevel}` in {}", opts.file);
            return ExitCode::from(2);
        }
    }
    if opts.interface_only {
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dartc: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let slots = match dart::parse_inputs(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("dartc: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let machine = dart_ram::MachineConfig {
            max_steps: opts.max_steps,
            ..dart_ram::MachineConfig::default()
        };
        let replayed = if opts.trace {
            dart::replay_traced(&compiled, &toplevel, opts.depth, machine, slots, opts.seed).map(
                |(termination, trace)| {
                    for line in &trace {
                        println!("{line}");
                    }
                    termination
                },
            )
        } else {
            dart::replay(&compiled, &toplevel, opts.depth, machine, slots, opts.seed)
        };
        let termination = match replayed {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dartc: {e}");
                return ExitCode::from(2);
            }
        };
        println!("replay: {termination:?}");
        return match termination {
            dart::RunTermination::Ok => ExitCode::SUCCESS,
            _ => ExitCode::from(1),
        };
    }

    // The toplevel was checked above, but `Dart::new` can still reject the
    // config (e.g. an invalid `DART_SOLVE_THREADS` in the environment).
    let session = match Dart::new(&compiled, &toplevel, build_config(&opts)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dartc: {e}");
            return ExitCode::from(2);
        }
    };
    let report = session.run();
    println!("\n{report}");
    if opts.stats {
        let s = &report.solver;
        let queries = s.sat + s.unsat + s.unknown;
        println!("\nsolver statistics:");
        println!("  queries            {queries}");
        println!("  sat                {}", s.sat);
        println!("  unsat              {}", s.unsat);
        println!("  unknown            {}", s.unknown);
        println!("  unknown rate       {:.1}%", s.unknown_rate() * 100.0);
        println!("  cache hits         {}", s.cache_hits);
        println!("  model reuse        {}", s.cache_model_reuse);
        println!("  split solves       {}", s.split_solves);
        println!("  shared hits        {}", s.shared_hits);
        println!("  parallel wasted    {}", s.parallel_wasted);
        println!("  steals             {}", s.steals);
        println!(
            "  pool idle          {:?}",
            std::time::Duration::from_nanos(s.pool_idle_ns)
        );
        println!("  max queue depth    {}", s.max_queue_depth);
        println!("  warm pivots        {}", s.warm_pivots);
        println!("  cold restarts      {}", s.cold_restarts);
        println!("  portfolio fd wins  {}", s.portfolio_fd_wins);
        println!("  portfolio lp wins  {}", s.portfolio_lp_wins);
        if !s.per_worker_solves.is_empty() {
            let solves: Vec<String> = s.per_worker_solves.iter().map(u64::to_string).collect();
            println!("  per-worker solves  [{}]", solves.join(", "));
        }
        println!("  dedup hits         {}", report.dedup_hits);
        println!("  frontier evicted   {}", report.frontier_evicted);
        println!("  frontier peak      {}", report.frontier_peak);
        println!("  exec time          {:?}", report.exec_time);
        println!("  solve time         {:?}", report.solve_time);
        println!("  blocks fused       {}", report.blocks_fused);
        println!("  block fallbacks    {}", report.block_fallbacks);
        println!("  steps fast-pathed  {}", report.steps_fast_pathed);
    }
    for bug in &report.bugs {
        println!("\n{bug}");
    }
    if let (Some(path), Some(bug)) = (&opts.save_bug, report.bug()) {
        let text = dart::serialize_inputs(&bug.inputs);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("dartc: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("reproduction written to {path}");
    }
    if report.found_bug() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<Options, String> {
        parse_args(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_file() {
        let o = parse(&["prog.mc"]).unwrap();
        assert_eq!(o.file, "prog.mc");
        assert_eq!(o.depth, 1);
        assert_eq!(o.mode, EngineMode::Directed);
        assert!(o.toplevel.is_none());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "p.mc",
            "--toplevel",
            "f",
            "--depth",
            "3",
            "--runs",
            "42",
            "--seed",
            "9",
            "--mode",
            "generational",
            "--strategy",
            "random-branch",
            "--all-bugs",
            "--max-steps",
            "1000",
            "--save-bug",
            "bug.txt",
            "--replay",
            "in.txt",
        ])
        .unwrap();
        assert_eq!(o.toplevel.as_deref(), Some("f"));
        assert_eq!(o.depth, 3);
        assert_eq!(o.runs, 42);
        assert_eq!(o.seed, 9);
        assert_eq!(o.mode, EngineMode::Generational);
        assert_eq!(o.strategy, Strategy::RandomBranch);
        assert!(o.all_bugs);
        assert_eq!(o.max_steps, 1000);
        assert_eq!(o.save_bug.as_deref(), Some("bug.txt"));
        assert_eq!(o.replay.as_deref(), Some("in.txt"));
    }

    #[test]
    fn stats_and_cache_flags() {
        let o = parse(&["p.mc", "--stats", "--no-cache"]).unwrap();
        assert!(o.stats);
        assert!(o.no_cache);
        let o = parse(&["p.mc"]).unwrap();
        assert!(!o.stats);
        assert!(!o.no_cache);
    }

    #[test]
    fn robustness_flags() {
        let o = parse(&[
            "p.mc",
            "--mem-budget",
            "4096",
            "--deadline",
            "250",
            "--sweep",
            "f,g,h",
            "--threads",
            "8",
            "--max-retries",
            "2",
        ])
        .unwrap();
        assert_eq!(o.mem_budget, Some(4096));
        assert_eq!(o.deadline_ms, Some(250));
        assert_eq!(o.sweep.as_deref(), Some("f,g,h"));
        assert_eq!(o.threads, 8);
        assert_eq!(o.max_retries, 2);
        let o = parse(&["p.mc"]).unwrap();
        assert_eq!(o.mem_budget, None);
        assert_eq!(o.deadline_ms, None);
        assert!(o.sweep.is_none());
        assert_eq!(o.threads, 4);
        assert_eq!(o.max_retries, 1);
    }

    #[test]
    fn parallel_solving_flags() {
        let o = parse(&["p.mc", "--solve-threads", "4", "--shared-cache"]).unwrap();
        assert_eq!(o.solve_threads, Some(4));
        assert!(o.shared_cache);
        let config = build_config(&o);
        assert_eq!(config.solve_threads, 4);
        assert!(config.shared_cache);
        assert_eq!(config.scheduler, SchedulerMode::WorkStealing);
        // Unset, the flag defers to the DartConfig default (which reads
        // $DART_SOLVE_THREADS) rather than pinning 1.
        let o = parse(&["p.mc"]).unwrap();
        assert_eq!(o.solve_threads, None);
        assert!(!o.shared_cache);
        assert!(parse(&["p.mc", "--solve-threads", "0"]).is_err());
        assert!(parse(&["p.mc", "--solve-threads", "many"]).is_err());
    }

    #[test]
    fn farm_flags() {
        let o = parse(&[
            "p.mc",
            "--sweep",
            "f,g",
            "--farm",
            "--store",
            "verdicts.store",
            "--stream",
            "-",
            "--worker-deadline",
            "750",
        ])
        .unwrap();
        assert!(o.farm);
        assert_eq!(o.store.as_deref(), Some("verdicts.store"));
        assert_eq!(o.stream.as_deref(), Some("-"));
        assert_eq!(o.worker_deadline_ms, Some(750));
        let o = parse(&["p.mc"]).unwrap();
        assert!(!o.farm);
        assert!(o.store.is_none());
        assert!(o.stream.is_none());
        assert_eq!(o.worker_deadline_ms, None);
        // Farm flags are tied to the farm, and the farm to the sweep.
        assert!(parse(&["p.mc", "--farm"]).is_err());
        assert!(parse(&["p.mc", "--store", "s"]).is_err());
        assert!(parse(&["p.mc", "--sweep", "f", "--stream", "out.jsonl"]).is_err());
        assert!(parse(&[
            "p.mc",
            "--sweep",
            "f",
            "--farm",
            "--worker-deadline",
            "soon"
        ])
        .is_err());
    }

    #[test]
    fn farm_worker_mode_flags() {
        let o = parse(&[
            "p.mc",
            "--farm-worker",
            "--toplevel",
            "f",
            "--farm-index",
            "3",
            "--farm-attempt",
            "1",
            "--store",
            "verdicts.store",
        ])
        .unwrap();
        assert!(o.farm_worker);
        assert_eq!(o.farm_index, 3);
        assert_eq!(o.farm_attempt, 1);
        // Worker mode skips the farm-flag validation: the supervisor
        // forwards `--store` without `--farm`.
        assert_eq!(o.store.as_deref(), Some("verdicts.store"));
    }

    #[test]
    fn worker_args_forward_the_engine_configuration() {
        let o = parse(&[
            "p.mc",
            "--sweep",
            "f",
            "--farm",
            "--mode",
            "generational",
            "--checkpoint",
            "cp",
            "--store",
            "s",
            "--solve-threads",
            "2",
            "--threads",
            "8",
            "--worker-deadline",
            "100",
            "--portfolio",
            "on",
        ])
        .unwrap();
        let args = worker_forward_args(&o);
        let has = |flag: &str| args.iter().any(|a| a == flag);
        assert!(has("--mode") && args.contains(&"generational".to_string()));
        assert!(has("--checkpoint") && has("--store") && has("--solve-threads"));
        assert!(has("--portfolio") && args.contains(&"on".to_string()));
        // Supervisor-only flags must not leak into workers.
        assert!(!has("--threads") && !has("--worker-deadline") && !has("--farm"));
        // Unset optionals stay unset so workers inherit env defaults.
        let o = parse(&["p.mc", "--sweep", "f", "--farm"]).unwrap();
        let args = worker_forward_args(&o);
        assert!(!args
            .iter()
            .any(|a| a == "--exec-tier" || a == "--solve-threads" || a == "--portfolio"));
    }

    #[test]
    fn scheduler_flag() {
        let o = parse(&["p.mc", "--scheduler", "scoped"]).unwrap();
        assert_eq!(o.scheduler, SchedulerMode::StaticScoped);
        assert_eq!(build_config(&o).scheduler, SchedulerMode::StaticScoped);
        let o = parse(&["p.mc", "--scheduler", "stealing"]).unwrap();
        assert_eq!(o.scheduler, SchedulerMode::WorkStealing);
        // The default is the work-stealing pool.
        let o = parse(&["p.mc"]).unwrap();
        assert_eq!(o.scheduler, SchedulerMode::WorkStealing);
        assert!(parse(&["p.mc", "--scheduler", "chunked"]).is_err());
        assert!(parse(&["p.mc", "--scheduler"]).is_err());
    }

    #[test]
    fn exec_tier_flag() {
        let o = parse(&["p.mc", "--exec-tier", "compiled"]).unwrap();
        assert_eq!(o.exec_tier, Some(ExecTier::Compiled));
        assert_eq!(build_config(&o).exec_tier, ExecTier::Compiled);
        let o = parse(&["p.mc", "--exec-tier", "interp"]).unwrap();
        assert_eq!(o.exec_tier, Some(ExecTier::Interp));
        assert_eq!(build_config(&o).exec_tier, ExecTier::Interp);
        // Unset, the flag defers to the DartConfig default (which reads
        // $DART_EXEC_TIER) rather than pinning the interpreter.
        let o = parse(&["p.mc"]).unwrap();
        assert_eq!(o.exec_tier, None);
        assert!(parse(&["p.mc", "--exec-tier", "jit"]).is_err());
        assert!(parse(&["p.mc", "--exec-tier"]).is_err());
    }

    #[test]
    fn portfolio_flag() {
        let o = parse(&["p.mc", "--portfolio", "on"]).unwrap();
        assert_eq!(o.portfolio, Some(PortfolioMode::On));
        assert_eq!(build_config(&o).portfolio, PortfolioMode::On);
        let o = parse(&["p.mc", "--portfolio", "off"]).unwrap();
        assert_eq!(o.portfolio, Some(PortfolioMode::Off));
        assert_eq!(build_config(&o).portfolio, PortfolioMode::Off);
        // Unset, the flag defers to the DartConfig default (which reads
        // $DART_PORTFOLIO) rather than pinning off.
        let o = parse(&["p.mc"]).unwrap();
        assert_eq!(o.portfolio, None);
        assert!(parse(&["p.mc", "--portfolio", "race"]).is_err());
        assert!(parse(&["p.mc", "--portfolio"]).is_err());
    }

    #[test]
    fn frontier_flags() {
        let o = parse(&[
            "p.mc",
            "--engine",
            "generational",
            "--frontier-order",
            "fifo",
            "--frontier-budget",
            "64",
            "--checkpoint",
            "cp.txt",
        ])
        .unwrap();
        assert_eq!(o.mode, EngineMode::Generational);
        assert_eq!(o.frontier_order, FrontierOrder::Fifo);
        assert_eq!(o.frontier_budget, Some(64));
        assert_eq!(o.checkpoint.as_deref(), Some("cp.txt"));
        let config = build_config(&o);
        assert_eq!(config.frontier_order, FrontierOrder::Fifo);
        assert_eq!(config.frontier_budget, Some(64));
        assert_eq!(config.checkpoint, Some(std::path::PathBuf::from("cp.txt")));
        // Defaults: scored order, unbounded frontier, no checkpoint.
        let o = parse(&["p.mc"]).unwrap();
        assert_eq!(o.frontier_order, FrontierOrder::Scored);
        assert_eq!(o.frontier_budget, None);
        assert!(o.checkpoint.is_none());
        // A zero budget parses; the engine rejects it as InvalidConfig.
        let o = parse(&["p.mc", "--frontier-budget", "0"]).unwrap();
        assert_eq!(o.frontier_budget, Some(0));
        assert!(parse(&["p.mc", "--frontier-order", "lifo"]).is_err());
        assert!(parse(&["p.mc", "--frontier-budget", "many"]).is_err());
        assert!(parse(&["p.mc", "--checkpoint"]).is_err());
        assert!(parse(&["p.mc", "--engine", "quantum"]).is_err());
    }

    #[test]
    fn budget_and_deadline_reach_the_config() {
        let o = parse(&["p.mc", "--mem-budget", "512", "--deadline", "100"]).unwrap();
        let config = build_config(&o);
        assert_eq!(config.machine.budget.max_alloc_words, 512);
        assert_eq!(config.deadline, Some(std::time::Duration::from_millis(100)));
        assert_eq!(
            config.solver.deadline,
            Some(std::time::Duration::from_millis(100))
        );
        // Without the flags, budgets stay unbounded and no deadline is set.
        let config = build_config(&parse(&["p.mc"]).unwrap());
        assert_eq!(config.machine.budget.max_alloc_words, u64::MAX);
        assert_eq!(config.deadline, None);
        assert_eq!(config.solver.deadline, None);
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["a.mc", "--mode", "quantum"]).is_err());
        assert!(parse(&["a.mc", "--depth"]).is_err());
        assert!(parse(&["a.mc", "--deadline"]).is_err());
        assert!(parse(&["a.mc", "--mem-budget", "lots"]).is_err());
        assert!(parse(&["a.mc", "b.mc"]).is_err());
        assert!(parse(&["a.mc", "--frobnicate"]).is_err());
    }
}
