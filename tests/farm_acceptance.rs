//! Acceptance tests for the fuzzing farm: process-isolated sweep shards
//! with a crash-safe persistent verdict store and streaming results.
//!
//! The headline properties, exercised through the real `dartc` binary:
//!
//! 1. **Containment** — a worker that `abort()`s (or is killed) takes
//!    down only its own shard; every other function's result is
//!    byte-identical to an undisturbed in-process sweep.
//! 2. **Crash-safe persistence** — a corrupt or torn store is degraded
//!    to a cold cache, never a wrong verdict; a second farm run against
//!    the same store sees shared-store hits.
//! 3. **Resumability** — a shard killed with SIGKILL mid-run resumes
//!    from its checkpoint on the next farm run and reaches the same
//!    verdict as an uninterrupted run.
//!
//! The fault-injection plans ride to workers over `DART_FAULT_*`
//! environment variables, so the abort/panic tests need the
//! `fault-injection` feature (CI runs this file with it enabled).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

fn dartc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dartc"))
}

/// A per-test scratch directory (tests run in one process, so the test
/// name keeps them from clobbering each other).
fn tempdir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dart-farm-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Three functions with distinct verdicts: a buggy one, a complete
/// bug-free one, and one more buggy one — enough to tell results apart.
fn write_library(dir: &Path) -> PathBuf {
    let path = dir.join("library.mc");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        r#"
        int f(int x) {{ return 2 * x; }}
        int h(int x, int y) {{
            if (x != y)
                if (f(x) == x + 10)
                    abort();
            return 0;
        }}
        int g(int a) {{
            if (a == 12345)
                abort();
            return a;
        }}
        int ok(int z) {{
            if (z > 0) return 1;
            return 0;
        }}
        "#
    )
    .unwrap();
    path
}

fn run(cmd: &mut Command) -> (Option<i32>, String, String) {
    let out = cmd.output().unwrap();
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The farm prints the same per-function result table as the in-process
/// sweep; on the same seeds the two must be byte-identical modulo the
/// scheduling-dependent diagnostics (`shared/wasted`, `steals` — see
/// `SolveStats::scrub_scheduling`), which any parallel solver run may
/// vary even between two in-process sweeps.
#[test]
fn farm_output_matches_in_process_sweep() {
    let dir = tempdir("parity");
    let lib = write_library(&dir);
    let sweep_args = ["--sweep", "h,g,ok", "--seed", "7"];
    let (code_a, sweep_out, _) = run(dartc().arg(&lib).args(sweep_args));
    let (code_b, farm_out, _) = run(dartc().arg(&lib).args(sweep_args).arg("--farm"));
    assert_eq!(code_a, Some(1), "two functions have bugs\n{sweep_out}");
    assert_eq!(code_b, code_a);
    assert_eq!(
        scrub_scheduling(&farm_out),
        scrub_scheduling(&sweep_out),
        "farm must reproduce the sweep byte-for-byte"
    );
}

/// `--stream FILE` emits one JSON line per finished function, and a
/// second farm run against the same `--store` answers queries from the
/// persisted verdicts (nonzero `shared_hits`) without changing any
/// result.
#[test]
fn store_persists_verdicts_and_second_run_hits_it() {
    let dir = tempdir("store-hits");
    let lib = write_library(&dir);
    let store = dir.join("verdicts.store");
    let stream1 = dir.join("run1.jsonl");
    let stream2 = dir.join("run2.jsonl");
    let base = ["--sweep", "h,g,ok", "--farm", "--threads", "2"];

    let (_, out1, err1) = run(dartc().arg(&lib).args(base).args([
        "--store",
        store.to_str().unwrap(),
        "--stream",
        stream1.to_str().unwrap(),
    ]));
    assert!(err1.is_empty(), "no warnings on a fresh store\n{err1}");
    let text = std::fs::read_to_string(&store).unwrap();
    assert!(text.starts_with("dart-farm-store v1\n"), "{text}");
    assert!(
        text.lines().skip(1).all(|l| l.contains(" ~")),
        "checksummed lines\n{text}"
    );

    let (_, out2, _) = run(dartc().arg(&lib).args(base).args([
        "--store",
        store.to_str().unwrap(),
        "--stream",
        stream2.to_str().unwrap(),
    ]));

    for stream in [&stream1, &stream2] {
        let jsonl = std::fs::read_to_string(stream).unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3, "one line per function\n{jsonl}");
        for line in &lines {
            assert!(line.starts_with("{\"event\":\"function\","), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert!(line.contains("\"outcome\":\"finished\""), "{line}");
        }
    }
    let hits: u64 = std::fs::read_to_string(&stream2)
        .unwrap()
        .lines()
        .map(|l| field_u64(l, "shared_hits"))
        .sum();
    assert!(hits > 0, "second run must hit the persisted store\n{out2}");

    // Store hits change only the shared-hit counter (as-if-fresh
    // accounting), so the result tables still match byte-for-byte after
    // scrubbing the scheduling diagnostics.
    assert_eq!(scrub_scheduling(&out1), scrub_scheduling(&out2));
}

/// Pulls `"name":N` out of a stream line.
fn field_u64(line: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let rest = &line[line.find(&key).unwrap() + key.len()..];
    rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
}

/// Blanks the scheduling-dependent `shared/wasted N/M | steals K`
/// segment of each result-table line — the counters the determinism
/// contract excludes. Everything else stays byte-exact.
fn scrub_scheduling(table: &str) -> String {
    let mut out = String::new();
    for line in table.lines() {
        match (line.find("| shared/wasted "), line.find(" | frontier")) {
            (Some(a), Some(b)) if a < b => {
                out.push_str(&line[..a]);
                out.push_str("| shared/wasted - | steals -");
                out.push_str(&line[b..]);
            }
            _ => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// A corrupted store tail is truncated with a warning and the farm
/// still completes with correct results — persistence can only add
/// cache hits, never wrong verdicts.
#[test]
fn corrupt_store_degrades_to_cold_cache() {
    let dir = tempdir("corrupt");
    let lib = write_library(&dir);
    let store = dir.join("verdicts.store");
    let base = ["--sweep", "h,g,ok", "--farm"];
    let store_args = ["--store", store.to_str().unwrap()];

    let (_, reference, _) = run(dartc().arg(&lib).args(base));
    run(dartc().arg(&lib).args(base).args(store_args));

    // Flip a byte in the middle of the store: everything from the bad
    // line on is dropped, with a warning.
    let mut text = std::fs::read_to_string(&store).unwrap();
    let mid = text.len() / 2;
    text.replace_range(mid..mid + 1, "\u{7f}");
    std::fs::write(&store, &text).unwrap();

    let (code, out, err) = run(dartc().arg(&lib).args(base).args(store_args));
    assert_eq!(code, Some(1), "bugs still found\n{out}");
    assert!(err.contains("warning:"), "corruption must warn\n{err}");
    assert_eq!(
        scrub_scheduling(&out),
        scrub_scheduling(&reference),
        "verdicts unchanged"
    );

    // The flush after the run rewrote a clean store: a further run
    // loads it silently.
    let (_, _, err) = run(dartc().arg(&lib).args(base).args(store_args));
    assert!(err.is_empty(), "store healed after rewrite\n{err}");
}

/// SIGKILL a worker mid-session, then run the farm over the same
/// checkpoint directory: the shard resumes and reaches the same verdict
/// as an undisturbed run. (The kill lands at an arbitrary point, so the
/// checkpoint may hold partial progress or nothing — both must recover.)
#[cfg(unix)]
#[test]
fn sigkilled_worker_resumes_from_checkpoint() {
    let dir = tempdir("kill-resume");
    let lib = write_library(&dir);
    let checkpoint = dir.join("cp");
    let engine = [
        "--mode",
        "generational",
        "--seed",
        "3",
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ];

    // Launch the exact worker process the farm would launch for `h`
    // (attempt 0), and SIGKILL it.
    let mut worker = dartc()
        .arg(&lib)
        .args([
            "--farm-worker",
            "--toplevel",
            "h",
            "--farm-index",
            "0",
            "--farm-attempt",
            "0",
        ])
        .args(engine)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(15));
    let _ = Command::new("kill")
        .args(["-9", &worker.id().to_string()])
        .status();
    let status = worker.wait().unwrap();
    // Either the kill landed (signal) or the worker won the race and
    // finished; the farm below must produce the right verdict in both
    // worlds, so no assert on `status` beyond reaping it.
    let _ = status;

    let (code, farm_out, _) = run(dartc()
        .arg(&lib)
        .args(["--sweep", "h", "--farm"])
        .args(engine));
    assert_eq!(code, Some(1), "h has a bug\n{farm_out}");

    // Same verdict as an undisturbed in-process run. A resumed session
    // replays fewer queries than a fresh one, so compare the verdict
    // prefix, not the stats tail.
    let (_, fresh_out, _) = run(dartc().arg(&lib).args(["--sweep", "h"]).args([
        "--mode",
        "generational",
        "--seed",
        "3",
    ]));
    let verdict = |table: &str| {
        table
            .lines()
            .find(|l| l.starts_with("h "))
            .and_then(|l| l.split(" | runs").next().map(str::to_string))
            .unwrap_or_default()
    };
    assert_eq!(
        verdict(&farm_out),
        verdict(&fresh_out),
        "\n{farm_out}\n{fresh_out}"
    );
    assert!(verdict(&farm_out).contains("BUG FOUND"), "{farm_out}");
}

/// An injected `abort()` in one shard is contained: the farm reports an
/// engine fault naming the signal for that function — after exhausting
/// the retry policy — and every survivor is byte-identical to an
/// undisturbed in-process sweep.
#[cfg(all(unix, feature = "fault-injection"))]
#[test]
fn injected_abort_is_contained_and_survivors_match() {
    let dir = tempdir("abort");
    let lib = write_library(&dir);
    let args = ["--sweep", "h,g,ok", "--seed", "11", "--max-retries", "2"];

    let (_, reference, _) = run(dartc().arg(&lib).args(args));
    let (code, out, _) = run(dartc()
        .arg(&lib)
        .args(args)
        .arg("--farm")
        // Inherited by every worker; only the worker for input index 1
        // (`g`) aborts — on every attempt, so retries exhaust.
        .env("DART_FAULT_ABORT_SESSION", "1"));

    assert_eq!(code, Some(1), "faults mean a nonzero exit\n{out}");
    let fault_line = out.lines().find(|l| l.starts_with("g ")).unwrap();
    assert!(
        fault_line.contains("ENGINE FAULT") && fault_line.contains("signal 6"),
        "SIGABRT must be named: {fault_line}"
    );
    assert!(out.contains("1 engine faults"), "{out}");
    assert!(out.contains("1 retried"), "{out}");

    let survivors = |table: &str| -> Vec<String> {
        scrub_scheduling(table)
            .lines()
            .filter(|l| l.starts_with("h ") || l.starts_with("ok "))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        survivors(&out),
        survivors(&reference),
        "survivors undisturbed"
    );
}

/// Determinism under recoverable fault injection: for plans a
/// `catch_unwind` can contain (panics, forced-unknown queries, denied
/// allocations) the farm and the in-process sweep agree result-for-result
/// — same verdicts, same fault messages — once scheduling-dependent
/// diagnostics are scrubbed.
#[cfg(feature = "fault-injection")]
mod determinism {
    use super::*;
    use dart::{sweep, DartConfig, FarmJob, FarmOptions, FaultPlan, SweepOutcome};
    use proptest::prelude::*;

    const SOURCE: &str = r#"
        int f(int x) { return 2 * x; }
        int h(int x, int y) {
            if (x != y)
                if (f(x) == x + 10)
                    abort();
            return 0;
        }
        int g(int a) {
            if (a == 12345)
                abort();
            return a;
        }
        int boxed(int n) {
            int *p;
            p = malloc(16);
            *p = n;
            if (*p == 9) return 1;
            return 0;
        }
    "#;

    fn farm_results(lib: &Path, names: &[String], plan: FaultPlan) -> Vec<SweepOutcome> {
        let options = FarmOptions {
            threads: 2,
            max_retries: 1,
            ..FarmOptions::default()
        };
        let command = move |job: &FarmJob| -> Command {
            let mut cmd = dartc();
            cmd.arg(lib)
                .args(["--farm-worker", "--toplevel", job.function])
                .args(["--farm-index", &job.index.to_string()])
                .args(["--farm-attempt", &job.attempt.to_string()])
                .args(["--seed", "5"]);
            if let Some(i) = plan.panic_in_session {
                cmd.env("DART_FAULT_PANIC_SESSION", i.to_string());
            }
            if let Some(n) = plan.unknown_on_query {
                cmd.env("DART_FAULT_UNKNOWN_QUERY", n.to_string());
            }
            if let Some(m) = plan.deny_alloc {
                cmd.env("DART_FAULT_DENY_ALLOC", m.to_string());
            }
            cmd
        };
        dart::run_farm(names, &options, &command, None)
            .unwrap()
            .into_iter()
            .map(|r| scrub(r.outcome))
            .collect()
    }

    /// Zeroes wall-clock times and scheduling diagnostics, the only
    /// fields the determinism contract excludes.
    fn scrub(outcome: SweepOutcome) -> SweepOutcome {
        match outcome {
            SweepOutcome::Finished {
                mut report,
                retried,
            } => {
                report.exec_time = std::time::Duration::ZERO;
                report.solve_time = std::time::Duration::ZERO;
                report.solver.scrub_scheduling();
                SweepOutcome::Finished { report, retried }
            }
            fault => fault,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn farm_equals_sweep_under_fault_injection(
            panic_ix in proptest::option::of(0usize..4),
            unknown_q in proptest::option::of(0u64..3),
            deny_m in proptest::option::of(0u64..3),
        ) {
            let plan = FaultPlan {
                panic_in_session: panic_ix,
                unknown_on_query: unknown_q,
                deny_alloc: deny_m,
                abort_in_session: None,
            };
            let dir = tempdir("determinism");
            let lib = dir.join("library.mc");
            std::fs::write(&lib, SOURCE).unwrap();
            let compiled = dart_minic::compile(SOURCE).unwrap();
            let names: Vec<String> =
                ["h", "g", "boxed"].into_iter().map(String::from).collect();

            let config = DartConfig { seed: 5, faults: plan, ..DartConfig::default() };
            let in_process: Vec<SweepOutcome> = sweep(&compiled, &names, &config, 2)
                .unwrap()
                .into_iter()
                .map(|r| scrub(r.outcome))
                .collect();
            let farm = farm_results(&lib, &names, plan);

            prop_assert_eq!(farm, in_process);
        }
    }
}
