//! Repository-level robustness tests: resource budgets, deadlines and
//! supervised sweeps, exercised through the public API exactly as an
//! embedding application would.
//!
//! The fault-injection hooks themselves are feature-gated; the tests that
//! need them are behind `cfg(feature = "fault-injection")` and run in the
//! CI pass that enables the feature.

use dart::{BugKind, Dart, DartConfig, DartError, Outcome, SweepOutcome};
use dart_ram::{MachineConfig, ResourceBudget};
use std::time::Duration;

fn budgeted(max_alloc_words: u64) -> DartConfig {
    DartConfig {
        max_runs: 100,
        seed: 1,
        machine: MachineConfig {
            budget: ResourceBudget { max_alloc_words },
            ..MachineConfig::default()
        },
        ..DartConfig::default()
    }
}

/// Two fixed heap allocations (4 + 3 words) on top of the toplevel's
/// 4-word stack frame: 11 words allocated in total, no symbolic branches.
const TWO_MALLOCS: &str = r#"
    void f(int x) {
        int *a;
        int *b;
        a = malloc(4);
        b = malloc(3);
    }
"#;

#[test]
fn alloc_budget_boundary_is_inclusive_through_the_public_api() {
    let compiled = dart_minic::compile(TWO_MALLOCS).unwrap();

    // Landing exactly on the cap is allowed...
    let report = Dart::new(&compiled, "f", budgeted(11)).unwrap().run();
    assert!(!report.found_bug(), "{report}");
    assert_eq!(report.outcome, Outcome::Complete);

    // ...one word less and the second malloc trips the budget.
    let report = Dart::new(&compiled, "f", budgeted(10)).unwrap().run();
    let bug = report.bug().expect("budget exhaustion is a bug by default");
    assert!(matches!(bug.kind, BugKind::OutOfMemory));

    // The default budget is unbounded.
    let report = Dart::new(&compiled, "f", budgeted(u64::MAX)).unwrap().run();
    assert!(!report.found_bug());
}

#[test]
fn oom_can_be_downgraded_to_incompleteness() {
    let compiled = dart_minic::compile(TWO_MALLOCS).unwrap();
    let config = DartConfig {
        oom_is_bug: false,
        ..budgeted(10)
    };
    let report = Dart::new(&compiled, "f", config).unwrap().run();
    assert!(!report.found_bug(), "downgraded: {report}");
    assert_ne!(
        report.outcome,
        Outcome::Complete,
        "a truncated run must not claim completeness"
    );
}

#[test]
fn session_deadline_degrades_to_partial_results() {
    // A 40-level binary search over [0, 2^40): every branch splits the
    // remaining interval strictly in half, so the ~2^40 feasible paths are
    // all distinct and the frontier can never drain. The deadline is the
    // only way out, however fast the engine gets.
    let compiled = dart_minic::compile(
        r#"
        int hog(int x) {
            int lo;
            int hi;
            int mid;
            int i;
            lo = 0;
            hi = 1;
            i = 0;
            while (i < 40) {
                hi = hi + hi;
                i = i + 1;
            }
            i = 0;
            while (i < 40) {
                mid = (lo + hi) / 2;
                if (x < mid) { hi = mid; } else { lo = mid; }
                i = i + 1;
            }
            return lo;
        }
        "#,
    )
    .unwrap();
    let config = DartConfig {
        max_runs: u64::MAX,
        seed: 1,
        deadline: Some(Duration::from_millis(50)),
        ..DartConfig::default()
    };
    let report = Dart::new(&compiled, "hog", config).unwrap().run();
    assert_eq!(report.outcome, Outcome::DeadlineExceeded);
    assert!(report.runs > 0, "partial results survive: {report}");
}

#[test]
fn expired_solver_deadline_is_incompleteness_not_unsat() {
    // With a zero per-query solver deadline every query degrades to
    // Unknown; the session must then refuse to claim completeness even
    // though the program is trivially explorable.
    let compiled = dart_minic::compile("void f(int x) { if (x == 7) abort(); }").unwrap();
    let mut config = DartConfig {
        max_runs: 50,
        seed: 1,
        ..DartConfig::default()
    };
    config.solver.deadline = Some(Duration::ZERO);
    let report = Dart::new(&compiled, "f", config).unwrap().run();
    assert_ne!(report.outcome, Outcome::Complete, "{report}");
    assert!(report.solver.unknown > 0, "queries gave up: {report}");
}

#[test]
fn sweep_with_zero_threads_is_a_clean_error() {
    let compiled = dart_minic::compile("int f(int x) { return x; }").unwrap();
    let config = DartConfig::default();
    match dart::sweep(&compiled, &["f".to_string()], &config, 0) {
        Err(DartError::InvalidConfig(reason)) => assert!(reason.contains("thread")),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn unfaulted_sweep_finishes_every_function_without_retries() {
    let compiled = dart_minic::compile(
        r#"
        int f(int x) { if (x == 3) abort(); return 0; }
        int g(int x) { return x + 1; }
        "#,
    )
    .unwrap();
    let config = DartConfig {
        max_runs: 100,
        seed: 1,
        ..DartConfig::default()
    };
    let names = vec!["f".to_string(), "g".to_string()];
    let results = dart::sweep(&compiled, &names, &config, 2).unwrap();
    assert_eq!(results.len(), 2);
    for r in &results {
        match &r.outcome {
            SweepOutcome::Finished { retried, .. } => assert!(!retried, "{}", r.function),
            SweepOutcome::EngineFault { message, .. } => {
                panic!("{} faulted without injection: {message}", r.function)
            }
        }
    }
    assert!(results[0].report().unwrap().found_bug());
    assert!(!results[1].report().unwrap().found_bug());
}

#[cfg(feature = "fault-injection")]
mod faulted {
    use super::*;
    use dart::FaultPlan;

    #[test]
    fn injected_panic_is_isolated_and_reported() {
        let compiled = dart_minic::compile(
            r#"
            int f(int x) { if (x == 1) return 1; return 0; }
            int g(int x) { if (x == 2) return 1; return 0; }
            int h(int x) { if (x == 3) return 1; return 0; }
            "#,
        )
        .unwrap();
        let config = DartConfig {
            max_runs: 100,
            seed: 1,
            faults: FaultPlan {
                panic_in_session: Some(1),
                ..FaultPlan::default()
            },
            ..DartConfig::default()
        };
        let names: Vec<String> = ["f", "g", "h"].iter().map(|s| s.to_string()).collect();
        let results = dart::sweep(&compiled, &names, &config, 2).unwrap();
        assert_eq!(results.len(), 3);
        match &results[1].outcome {
            SweepOutcome::EngineFault { message, retried } => {
                assert!(message.contains("injected fault"), "{message}");
                assert!(retried, "one reseeded retry was attempted");
            }
            other => panic!("expected EngineFault for g, got {other:?}"),
        }
        for i in [0usize, 2] {
            assert!(
                results[i].report().is_some(),
                "{} must survive its neighbour's crash",
                results[i].function
            );
        }
    }
}
