//! Process-level tests of the `dartc` binary: the paper's headline claim
//! ("testing can be performed completely automatically on any program that
//! compiles") exercised the way a user would.

use std::io::Write as _;
use std::process::Command;

fn dartc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dartc"))
}

fn write_demo(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("demo.mc");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        r#"
        int f(int x) {{ return 2 * x; }}
        int h(int x, int y) {{
            if (x != y)
                if (f(x) == x + 10)
                    abort();
            return 0;
        }}
        "#
    )
    .unwrap();
    path
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dartc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn finds_bug_and_exits_one() {
    let dir = tempdir();
    let demo = write_demo(&dir);
    let out = dartc()
        .arg(&demo)
        .args(["--toplevel", "h"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "bug found => exit 1\n{stdout}");
    assert!(stdout.contains("BUG FOUND"), "{stdout}");
    assert!(
        stdout.contains("toplevel: h"),
        "interface printed\n{stdout}"
    );
    assert!(stdout.contains("x0 = 10"), "witness printed\n{stdout}");
}

#[test]
fn save_and_replay_roundtrip() {
    let dir = tempdir();
    let demo = write_demo(&dir);
    let bugfile = dir.join("bug.txt");

    let out = dartc()
        .arg(&demo)
        .args(["--toplevel", "h", "--save-bug"])
        .arg(&bugfile)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(bugfile.exists());

    let out = dartc()
        .arg(&demo)
        .args(["--toplevel", "h", "--replay"])
        .arg(&bugfile)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("replay: Abort"), "{stdout}");

    // Traced replay prints disassembly lines ending at the abort.
    let out = dartc()
        .arg(&demo)
        .args(["--toplevel", "h", "--trace", "--replay"])
        .arg(&bugfile)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("if"), "trace shows conditionals\n{stdout}");
    assert!(stdout.contains("abort"), "{stdout}");
}

#[test]
fn clean_program_exits_zero() {
    let dir = tempdir();
    let path = dir.join("clean.mc");
    std::fs::write(&path, "int id(int x) { return x; }").unwrap();
    let out = dartc().arg(&path).output().unwrap(); // single function: no --toplevel needed
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("complete"), "{stdout}");
}

#[test]
fn compile_errors_exit_two() {
    let dir = tempdir();
    let path = dir.join("broken.mc");
    std::fs::write(&path, "int f( { }").unwrap();
    let out = dartc()
        .arg(&path)
        .args(["--toplevel", "f"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn usage_errors_exit_two() {
    let out = dartc().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn print_ir_disassembles() {
    let dir = tempdir();
    let demo = write_demo(&dir);
    let out = dartc().arg(&demo).arg("--print-ir").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout.contains("; fn h"), "{stdout}");
    assert!(stdout.contains("goto"), "{stdout}");
}
