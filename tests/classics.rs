//! End-to-end runs over the classic benchmark programs, including the
//! branch-coverage comparison the paper motivates in §1 ("random testing
//! usually provides low code coverage").

use dart::{Dart, DartConfig, EngineMode, Outcome};
use dart_workloads::{BOUNDED_STACK, LOCK_FSM, TCAS_LITE, TRIANGLE_BUGGY, TRIANGLE_FIXED};

fn directed(depth: u32, max_runs: u64, seed: u64) -> DartConfig {
    DartConfig {
        depth,
        max_runs,
        seed,
        ..DartConfig::default()
    }
}

#[test]
fn triangle_bug_found_and_fix_verified() {
    let buggy = dart_minic::compile(TRIANGLE_BUGGY).unwrap();
    let report = Dart::new(&buggy, "check", directed(1, 5000, 1))
        .unwrap()
        .run();
    let bug = report.bug().expect("missing isosceles case found");
    let vals: Vec<i64> = bug.inputs.iter().map(|s| s.value).collect();
    assert_eq!(vals[0], vals[2], "witness must be an a == c triangle");
    assert_ne!(vals[0], vals[1]);

    let fixed = dart_minic::compile(TRIANGLE_FIXED).unwrap();
    let report = Dart::new(&fixed, "check", directed(1, 100_000, 1))
        .unwrap()
        .run();
    assert!(!report.found_bug());
    assert_eq!(report.outcome, Outcome::Complete, "{report}");
}

#[test]
fn tcas_corner_case_found() {
    let compiled = dart_minic::compile(TCAS_LITE).unwrap();
    let report = Dart::new(&compiled, "check", directed(1, 5000, 2))
        .unwrap()
        .run();
    let bug = report.bug().expect("co-altitude descending corner found");
    let vals: Vec<i64> = bug.inputs.iter().map(|s| s.value).collect();
    assert_eq!(vals[0], vals[1], "co-altitude witness");
    assert!(vals[2] < 0, "descending witness");
}

#[test]
fn stack_underflow_needs_directed_search() {
    let compiled = dart_minic::compile(BOUNDED_STACK).unwrap();
    // Reaching data[-1] needs op == 2 && value == 777 on an empty stack:
    // probability ~2^-64 per random try; directed finds it at depth 1.
    let report = Dart::new(&compiled, "operate", directed(1, 2000, 3))
        .unwrap()
        .run();
    let bug = report.bug().expect("underflow crash found");
    assert!(
        matches!(bug.kind, dart::BugKind::Crash(_)),
        "expected a crash, got {}",
        bug.kind
    );
    let random = Dart::new(
        &compiled,
        "operate",
        DartConfig {
            mode: EngineMode::RandomOnly,
            depth: 1,
            max_runs: 5000,
            seed: 3,
            ..DartConfig::default()
        },
    )
    .unwrap()
    .run();
    assert!(!random.found_bug());
}

#[test]
fn lock_fsm_combination_dialed_in() {
    // The 5-symbol combination across depth-5 state: the paper's
    // "learning through trial and error" narrative, distilled.
    let compiled = dart_minic::compile(LOCK_FSM).unwrap();
    let report = Dart::new(&compiled, "step", directed(5, 10_000, 4))
        .unwrap()
        .run();
    let bug = report.bug().expect("combination found");
    let vals: Vec<i64> = bug.inputs.iter().map(|s| s.value).collect();
    assert_eq!(vals, vec![7, 3, 9, 1, 5], "the exact combination");
}

#[test]
fn directed_coverage_beats_random_under_equal_budget() {
    // Same budget (25 runs each) on the lock automaton at depth 2: the
    // directed search reaches the deeper states, random testing cannot
    // get past the first symbol check's else-branch.
    let compiled = dart_minic::compile(LOCK_FSM).unwrap();
    let directed_report = Dart::new(&compiled, "step", directed(2, 25, 5))
        .unwrap()
        .run();
    let random_report = Dart::new(
        &compiled,
        "step",
        DartConfig {
            mode: EngineMode::RandomOnly,
            depth: 2,
            max_runs: 25,
            seed: 5,
            ..DartConfig::default()
        },
    )
    .unwrap()
    .run();
    assert_eq!(directed_report.branch_sites, random_report.branch_sites);
    assert!(
        directed_report.branches_covered > random_report.branches_covered,
        "directed {} vs random {} of {} sites",
        directed_report.branches_covered,
        random_report.branches_covered,
        directed_report.branch_sites,
    );
}

#[test]
fn generational_mode_solves_the_lock_too() {
    let compiled = dart_minic::compile(LOCK_FSM).unwrap();
    let report = Dart::new(
        &compiled,
        "step",
        DartConfig {
            mode: EngineMode::Generational,
            depth: 5,
            max_runs: 10_000,
            seed: 4,
            ..DartConfig::default()
        },
    )
    .unwrap()
    .run();
    let bug = report.bug().expect("combination found generationally");
    let vals: Vec<i64> = bug.inputs.iter().map(|s| s.value).collect();
    assert_eq!(vals, vec![7, 3, 9, 1, 5]);
}

#[test]
fn sip_uri_parser_bug_behind_filters() {
    // The planted crash sits behind 6+ filter checks plus two switches:
    // the paper's "directed search learns through trial and error how to
    // generate inputs that satisfy filtering tests" — here ending in
    // scheme=sips, transport=udp, host=127.
    let compiled = dart_minic::compile(dart_workloads::SIP_URI_PARSER).unwrap();
    let report = Dart::new(&compiled, "register_uri", directed(1, 20_000, 1))
        .unwrap()
        .run();
    let bug = report.bug().expect("planted parser bug found: {report}");
    let vals: Vec<i64> = bug.inputs.iter().map(|s| s.value).collect();
    assert_eq!(vals[0], 2, "scheme forced to sips:");
    assert_eq!(vals[2], 127, "host forced to loopback");
    assert_eq!(vals[4], 1, "transport forced to udp");

    // Random testing under a 10x budget finds nothing.
    let random = Dart::new(
        &compiled,
        "register_uri",
        DartConfig {
            mode: EngineMode::RandomOnly,
            max_runs: 200_000,
            seed: 1,
            ..DartConfig::default()
        },
    )
    .unwrap()
    .run();
    assert!(!random.found_bug());
}

#[test]
fn bst_hot_key_crash_needs_two_directed_runs() {
    // Depth 2: insert anything, then the magic key. The magic-key equality
    // is a linear predicate, so DART solves it directly; random testing
    // has a 2^-32 shot per run.
    let compiled = dart_minic::compile(dart_workloads::BST_INSERT).unwrap();
    let report = Dart::new(&compiled, "insert", directed(2, 1000, 6))
        .unwrap()
        .run();
    let bug = report.bug().expect("hot-key crash found");
    assert!(matches!(
        bug.kind,
        dart::BugKind::Crash(dart_ram::Fault::NullDeref { .. })
    ));
    let vals: Vec<i64> = bug.inputs.iter().map(|s| s.value).collect();
    assert_eq!(vals[1], 23130, "second insert is the magic key");

    let random = Dart::new(
        &compiled,
        "insert",
        DartConfig {
            mode: EngineMode::RandomOnly,
            depth: 2,
            max_runs: 10_000,
            seed: 6,
            ..DartConfig::default()
        },
    )
    .unwrap()
    .run();
    assert!(!random.found_bug());
}
