//! Repository-level integration tests: source text → compiler → concolic
//! engine → bug reports, across all workspace crates.

use dart::{Dart, DartConfig, EngineMode, Outcome};
use dart_workloads::{
    generate_osip, needham_schroeder, Intruder, LoweFix, OsipConfig, Planted, AC_CONTROLLER,
};

fn directed(depth: u32, max_runs: u64, seed: u64) -> DartConfig {
    DartConfig {
        depth,
        max_runs,
        seed,
        ..DartConfig::default()
    }
}

#[test]
fn ns_possibilistic_depth1_no_error() {
    let src = needham_schroeder(Intruder::Possibilistic, LoweFix::Off);
    let compiled = dart_minic::compile(&src).unwrap();
    let report = Dart::new(&compiled, "deliver", directed(1, 10_000, 1))
        .unwrap()
        .run();
    assert!(!report.found_bug());
    assert_eq!(report.outcome, Outcome::Complete);
}

#[test]
fn ns_possibilistic_depth2_finds_projection_of_attack() {
    // Figure 9: error at depth 2 (DART "guesses" the nonce by solving).
    let src = needham_schroeder(Intruder::Possibilistic, LoweFix::Off);
    let compiled = dart_minic::compile(&src).unwrap();
    let report = Dart::new(&compiled, "deliver", directed(2, 10_000, 1))
        .unwrap()
        .run();
    assert!(report.found_bug(), "{report}");
}

#[test]
fn ns_possibilistic_random_search_fails() {
    // §4.2: "a random search is not able to find any assertion violations
    // after many hours".
    let src = needham_schroeder(Intruder::Possibilistic, LoweFix::Off);
    let compiled = dart_minic::compile(&src).unwrap();
    let report = Dart::new(
        &compiled,
        "deliver",
        DartConfig {
            mode: EngineMode::RandomOnly,
            depth: 2,
            max_runs: 5_000,
            ..DartConfig::default()
        },
    )
    .unwrap()
    .run();
    assert!(!report.found_bug());
}

#[test]
fn ns_dolev_yao_no_error_below_depth_4() {
    let src = needham_schroeder(Intruder::DolevYao, LoweFix::Off);
    let compiled = dart_minic::compile(&src).unwrap();
    for depth in 1..=3 {
        let report = Dart::new(&compiled, "deliver", directed(depth, 50_000, 1))
            .unwrap()
            .run();
        assert!(!report.found_bug(), "depth {depth}: {report}");
        assert_eq!(report.outcome, Outcome::Complete, "depth {depth}");
    }
}

#[test]
#[ignore = "slow in debug builds; exercised by the e3 bench binary"]
fn ns_dolev_yao_attack_at_depth_4() {
    let src = needham_schroeder(Intruder::DolevYao, LoweFix::Off);
    let compiled = dart_minic::compile(&src).unwrap();
    let report = Dart::new(&compiled, "deliver", directed(4, 100_000, 1))
        .unwrap()
        .run();
    assert!(report.found_bug(), "{report}");
}

#[test]
fn osip_functions_crash_rate_in_paper_band() {
    // Small sample of the synthetic library; the full sweep lives in the
    // e4 bench binary. Debug builds are slow, so cap runs tightly: the
    // discoverable defects fall within a few runs anyway.
    let lib = generate_osip(OsipConfig {
        num_functions: 24,
        seed: 5,
    });
    let compiled = dart_minic::compile(&lib.source).unwrap();
    let mut crashed = 0;
    let mut expected = 0;
    for f in &lib.functions {
        let report = Dart::new(&compiled, &f.name, directed(1, 60, 3))
            .unwrap()
            .run();
        crashed += u32::from(report.found_bug());
        expected += u32::from(f.planted.expected_found());
        if f.planted == Planted::UnguardedNullDeref {
            assert!(
                report.found_bug(),
                "{} has the paper's signature defect and must crash",
                f.name
            );
        }
        if f.planted == Planted::None {
            assert!(
                !report.found_bug(),
                "{} is correctly guarded and must not crash: {report}",
                f.name
            );
        }
    }
    assert!(
        crashed >= expected,
        "found {crashed}, expected at least {expected}"
    );
}

#[test]
fn osip_parser_alloca_bug_found() {
    let lib = generate_osip(OsipConfig {
        num_functions: 1,
        seed: 5,
    });
    let compiled = dart_minic::compile(&lib.source).unwrap();
    let report = Dart::new(&compiled, "osip_message_parse", directed(1, 200, 3))
        .unwrap()
        .run();
    let bug = report.bug().expect("unchecked alloca crash");
    assert!(
        matches!(
            bug.kind,
            dart::BugKind::Crash(dart_ram::Fault::NullDeref { .. })
        ),
        "{bug}"
    );
}

#[test]
fn ac_controller_matches_paper_depths() {
    let compiled = dart_minic::compile(AC_CONTROLLER).unwrap();
    let d1 = Dart::new(&compiled, "ac_controller", directed(1, 1000, 1))
        .unwrap()
        .run();
    assert_eq!(d1.outcome, Outcome::Complete);
    assert!(!d1.found_bug());

    let d2 = Dart::new(&compiled, "ac_controller", directed(2, 1000, 1))
        .unwrap()
        .run();
    assert!(d2.found_bug());
}

#[test]
fn bug_witnesses_replay_deterministically() {
    // Theorem 1(a): every reported bug is witnessed by concrete inputs.
    // Re-running the engine with the same seed reproduces the same bug.
    let compiled = dart_minic::compile(AC_CONTROLLER).unwrap();
    let a = Dart::new(&compiled, "ac_controller", directed(2, 1000, 9))
        .unwrap()
        .run();
    let b = Dart::new(&compiled, "ac_controller", directed(2, 1000, 9))
        .unwrap()
        .run();
    let (ba, bb) = (a.bug().unwrap(), b.bug().unwrap());
    assert_eq!(ba.run_index, bb.run_index);
    assert_eq!(
        ba.inputs.iter().map(|s| s.value).collect::<Vec<_>>(),
        bb.inputs.iter().map(|s| s.value).collect::<Vec<_>>()
    );
}

#[test]
fn lowe_fix_variants_behave_as_documented() {
    // The incomplete fix is still attackable (possibilistic, depth 2 is
    // the cheap check); the complete fix resists the possibilistic search
    // too? No — possibilistic can still guess, so use Dolev-Yao shapes via
    // scripted tests in the workloads crate; here just check both compile
    // and the possibilistic vulnerable path still exists without a fix.
    for fix in [LoweFix::Off, LoweFix::Incomplete, LoweFix::Complete] {
        let src = needham_schroeder(Intruder::DolevYao, fix);
        dart_minic::compile(&src).unwrap();
    }
}
