//! Property-based end-to-end tests of Theorem 1 on randomly generated
//! linear MiniC programs.
//!
//! Programs are random nests of linear conditionals over two integer
//! parameters, with `abort()`s sprinkled in some leaves. Everything stays
//! inside DART's decidable theory, so by Theorem 1 the directed search
//! must either find a bug or terminate having explored every feasible
//! path. We check both directions against a brute-force grid:
//!
//! * **Soundness** (1a): every reported bug's input vector, replayed
//!   concretely, reproduces an abort.
//! * **Completeness** (1b): if DART terminates without a bug, no grid
//!   point aborts.

use dart::{Dart, DartConfig, Outcome};
use dart_ram::{Machine, MachineConfig, StepOutcome, ZeroEnv};
use proptest::prelude::*;

/// A linear expression over `x`, `y` and constants, as source text.
fn linexpr() -> impl Strategy<Value = String> {
    (-3i64..=3, -3i64..=3, -8i64..=8).prop_map(|(a, b, c)| {
        let mut s = String::new();
        if a != 0 {
            s.push_str(&format!("{a} * x"));
        }
        if b != 0 {
            if !s.is_empty() {
                s.push_str(" + ");
            }
            s.push_str(&format!("{b} * y"));
        }
        if s.is_empty() {
            format!("{c}")
        } else {
            format!("{s} + {c}")
        }
    })
}

fn cond() -> impl Strategy<Value = String> {
    (
        linexpr(),
        prop_oneof![
            Just("=="),
            Just("!="),
            Just("<"),
            Just("<="),
            Just(">"),
            Just(">="),
        ],
        linexpr(),
    )
        .prop_map(|(l, op, r)| format!("({l}) {op} ({r})"))
}

/// A statement tree of bounded depth.
fn stmt(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        3 => linexpr().prop_map(|e| format!("z = z + ({e});")),
        1 => Just("abort();".to_string()),
        1 => Just("return z;".to_string()),
    ];
    leaf.prop_recursive(depth, 24, 3, move |inner| {
        (cond(), inner.clone(), proptest::option::of(inner))
            .prop_map(|(c, t, e)| match e {
                Some(e) => format!("if ({c}) {{ {t} }} else {{ {e} }}"),
                None => format!("if ({c}) {{ {t} }}"),
            })
            .boxed()
    })
    .boxed()
}

fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(3), 1..5).prop_map(|stmts| {
        format!(
            "int test(int x, int y) {{ int z = 0; {} return z; }}",
            stmts.join("\n")
        )
    })
}

/// Runs `test(x, y)` concretely; true iff it aborts.
fn aborts_concretely(compiled: &dart_minic::CompiledProgram, x: i64, y: i64) -> bool {
    let id = compiled.program.func_by_name("test").unwrap();
    let mut m = Machine::new(&compiled.program, MachineConfig::default());
    m.call(id, &[x, y]).unwrap();
    matches!(m.run(&mut ZeroEnv), StepOutcome::Aborted { .. })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem_1_on_random_linear_programs(src in program(), seed in 0u64..1000) {
        let compiled = match dart_minic::compile(&src) {
            Ok(c) => c,
            Err(e) => panic!("generated program must compile: {e}\n{src}"),
        };
        let report = Dart::new(&compiled, "test", DartConfig {
            max_runs: 20_000,
            seed,
            ..DartConfig::default()
        }).unwrap().run();

        // All constructs are linear: the session must resolve one way or
        // the other, never exhaust its (generous) budget.
        prop_assert_ne!(report.outcome.clone(), Outcome::Exhausted, "{}", src);

        match report.bug() {
            Some(bug) => {
                // Soundness: the witness replays to an abort.
                let vals: Vec<i64> = bug.inputs.iter().map(|s| s.value).collect();
                prop_assert_eq!(vals.len(), 2, "two scalar inputs");
                prop_assert!(
                    aborts_concretely(&compiled, vals[0], vals[1]),
                    "witness ({}, {}) must replay to an abort\n{}",
                    vals[0], vals[1], src
                );
            }
            None => {
                // Completeness: no point of a coarse grid aborts.
                prop_assert_eq!(report.outcome.clone(), Outcome::Complete, "{}", src);
                for x in -6..=6 {
                    for y in -6..=6 {
                        prop_assert!(
                            !aborts_concretely(&compiled, x, y),
                            "DART claimed completeness but ({x}, {y}) aborts\n{src}"
                        );
                    }
                }
            }
        }
    }
}
